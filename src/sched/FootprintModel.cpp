//===- sched/FootprintModel.cpp - Locality-aware loop scheduling ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "sched/FootprintModel.h"

#include "mf/Stmt.h"
#include "support/Statistic.h"
#include "symbolic/SymExpr.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

using namespace iaa;
using namespace iaa::sched;

#define IAA_STAT_GROUP "sched"
IAA_STAT(sched_loops_scored, "loops scored by the footprint model");
IAA_STAT(sched_gather_loops, "scored loops classified as gathers");

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *sched::localityModeName(LocalityMode M) {
  switch (M) {
  case LocalityMode::Off:
    return "off";
  case LocalityMode::Model:
    return "model";
  case LocalityMode::Reorder:
    return "reorder";
  }
  return "off";
}

bool sched::parseLocalityMode(const std::string &Name, LocalityMode &Out) {
  if (Name == "off")
    Out = LocalityMode::Off;
  else if (Name == "model")
    Out = LocalityMode::Model;
  else if (Name == "reorder")
    Out = LocalityMode::Reorder;
  else
    return false;
  return true;
}

const char *sched::accessPatternName(AccessPattern P) {
  switch (P) {
  case AccessPattern::Invariant:
    return "invariant";
  case AccessPattern::Contiguous:
    return "contiguous";
  case AccessPattern::Strided:
    return "strided";
  case AccessPattern::Gather:
    return "gather";
  }
  return "invariant";
}

//===----------------------------------------------------------------------===//
// ArrayFootprint / FootprintScore
//===----------------------------------------------------------------------===//

double ArrayFootprint::linesPerIter(unsigned LineElems) const {
  const double Elems = LineElems ? double(LineElems) : 1.0;
  switch (Pattern) {
  case AccessPattern::Invariant:
    return 0.0;
  case AccessPattern::Contiguous:
    return 1.0 / Elems;
  case AccessPattern::Strided:
    return std::min(1.0, double(Stride) / Elems);
  case AccessPattern::Gather:
    return 1.0;
  }
  return 0.0;
}

uint64_t ArrayFootprint::predictLines(int64_t NIter, unsigned LineElems) const {
  if (NIter <= 0 || Accesses == 0)
    return 0;
  const double Lines = linesPerIter(LineElems) * double(NIter);
  return std::max<uint64_t>(1, uint64_t(std::ceil(Lines)));
}

uint64_t FootprintScore::predictLines(int64_t NIter) const {
  if (NIter <= 0)
    return 0;
  return std::max<uint64_t>(1, uint64_t(std::ceil(LinesPerIter *
                                                  double(NIter))));
}

std::string FootprintScore::str() const {
  std::ostringstream OS;
  OS << "footprint: " << LinesPerIter << " lines/iter, reuse density "
     << ReuseDensity;
  if (HasGather) {
    OS << ", gather";
    if (GatherIndex)
      OS << " via " << GatherIndex->name();
  }
  for (const ArrayFootprint &A : Arrays) {
    OS << "\n  " << (A.Array ? A.Array->name() : "?") << ": "
       << accessPatternName(A.Pattern);
    if (A.Pattern == AccessPattern::Strided)
      OS << " stride " << A.Stride;
    if (A.IndexArray)
      OS << " via " << A.IndexArray->name();
    OS << ", " << A.Accesses << (A.Accesses == 1 ? " site" : " sites")
       << (A.Written ? ", written" : "");
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Body classification
//===----------------------------------------------------------------------===//

namespace {

/// Mutable per-array accumulator keyed by symbol during the body walk.
struct ArrayAcc {
  ArrayFootprint FP;
  unsigned FirstSeen = 0; ///< Visit order, for deterministic output.
};

/// Walks a loop body collecting every ArrayRef and classifying its
/// subscripts against the scheduled loop's index variable.
class BodyScanner {
public:
  BodyScanner(const mf::Symbol *IndexVar, unsigned LineElems)
      : IndexVar(IndexVar), LineElems(LineElems) {}

  void scanStmts(const mf::StmtList &Body) {
    for (const mf::Stmt *S : Body)
      scanStmt(S);
  }

  std::vector<ArrayFootprint> take() {
    std::vector<const ArrayAcc *> Order;
    Order.reserve(Arrays.size());
    for (const auto &KV : Arrays)
      Order.push_back(&KV.second);
    std::sort(Order.begin(), Order.end(),
              [](const ArrayAcc *A, const ArrayAcc *B) {
                return A->FirstSeen < B->FirstSeen;
              });
    std::vector<ArrayFootprint> Out;
    Out.reserve(Order.size());
    for (const ArrayAcc *A : Order)
      Out.push_back(A->FP);
    return Out;
  }

private:
  void scanStmt(const mf::Stmt *S) {
    switch (S->kind()) {
    case mf::StmtKind::Assign: {
      const auto *A = cast<mf::AssignStmt>(S);
      if (const mf::ArrayRef *Target = A->arrayTarget())
        noteRef(Target, /*IsWrite=*/true);
      scanExpr(A->rhs());
      break;
    }
    case mf::StmtKind::If: {
      const auto *I = cast<mf::IfStmt>(S);
      scanExpr(I->condition());
      scanStmts(I->thenBody());
      scanStmts(I->elseBody());
      break;
    }
    case mf::StmtKind::Do: {
      const auto *D = cast<mf::DoStmt>(S);
      scanExpr(D->lower());
      scanExpr(D->upper());
      if (D->step())
        scanExpr(D->step());
      scanStmts(D->body());
      break;
    }
    case mf::StmtKind::While: {
      const auto *W = cast<mf::WhileStmt>(S);
      scanExpr(W->condition());
      scanStmts(W->body());
      break;
    }
    case mf::StmtKind::Call: {
      const auto *C = cast<mf::CallStmt>(S);
      if (C->callee() && SeenCallees.insert(C->callee()).second)
        scanStmts(C->callee()->body());
      break;
    }
    }
  }

  void scanExpr(const mf::Expr *E) {
    switch (E->kind()) {
    case mf::ExprKind::IntLit:
    case mf::ExprKind::RealLit:
    case mf::ExprKind::VarRef:
      break;
    case mf::ExprKind::ArrayRef:
      noteRef(cast<mf::ArrayRef>(E), /*IsWrite=*/false);
      break;
    case mf::ExprKind::Unary:
      scanExpr(cast<mf::UnaryExpr>(E)->operand());
      break;
    case mf::ExprKind::Binary: {
      const auto *B = cast<mf::BinaryExpr>(E);
      scanExpr(B->lhs());
      scanExpr(B->rhs());
      break;
    }
    }
  }

  void noteRef(const mf::ArrayRef *AR, bool IsWrite) {
    // Classify the reference, then keep scanning the subscripts: an index
    // array read inside a gather subscript is itself an access.
    classify(AR, IsWrite);
    for (const mf::Expr *Sub : AR->subscripts())
      scanExpr(Sub);
  }

  void classify(const mf::ArrayRef *AR, bool IsWrite) {
    AccessPattern Pattern = AccessPattern::Invariant;
    int64_t Stride = 0;
    const mf::Symbol *Via = nullptr;
    const unsigned Rank = AR->rank();
    for (unsigned D = 0; D < Rank; ++D) {
      sym::SymExpr SE = sym::SymExpr::fromAst(AR->subscript(D));
      if (!SE.references(IndexVar))
        continue;
      // Affine iff the only term mentioning the index is its own Var atom.
      bool Affine = true;
      for (const auto &Term : SE.terms()) {
        const sym::AtomRef &A = Term.second.first;
        if (A->kind() == sym::AtomKind::Var && A->symbol() == IndexVar)
          continue;
        if (A->references(IndexVar)) {
          Affine = false;
          break;
        }
      }
      if (!Affine) {
        Pattern = AccessPattern::Gather;
        if (!Via)
          Via = findIndexArray(AR->subscript(D));
        continue;
      }
      const int64_t C = std::abs(SE.coeffOfVar(IndexVar));
      AccessPattern DimPattern;
      int64_t DimStride;
      if (D + 1 == Rank) {
        // Innermost dimension: the coefficient is the element stride.
        DimPattern = C == 1 ? AccessPattern::Contiguous
                            : AccessPattern::Strided;
        DimStride = C;
      } else {
        // The index walks a non-innermost dimension: consecutive
        // iterations are a whole row apart, so charge a full line.
        DimPattern = AccessPattern::Strided;
        DimStride = LineElems;
      }
      if (DimPattern > Pattern) {
        Pattern = DimPattern;
        Stride = DimStride;
      } else if (DimPattern == Pattern) {
        Stride = std::max(Stride, DimStride);
      }
    }

    auto It = Arrays.try_emplace(AR->array()).first;
    ArrayAcc &Acc = It->second;
    if (!Acc.FP.Array) {
      Acc.FP.Array = AR->array();
      Acc.FirstSeen = unsigned(Arrays.size());
    }
    ++Acc.FP.Accesses;
    Acc.FP.Written |= IsWrite;
    if (Pattern > Acc.FP.Pattern) {
      Acc.FP.Pattern = Pattern;
      Acc.FP.Stride = Stride;
    } else if (Pattern == Acc.FP.Pattern) {
      Acc.FP.Stride = std::max(Acc.FP.Stride, Stride);
    }
    if (Via && !Acc.FP.IndexArray)
      Acc.FP.IndexArray = Via;
  }

  /// First array read inside \p E whose subscript mentions the loop index:
  /// the gather's index array.
  const mf::Symbol *findIndexArray(const mf::Expr *E) const {
    switch (E->kind()) {
    case mf::ExprKind::IntLit:
    case mf::ExprKind::RealLit:
    case mf::ExprKind::VarRef:
      return nullptr;
    case mf::ExprKind::ArrayRef: {
      const auto *AR = cast<mf::ArrayRef>(E);
      for (const mf::Expr *Sub : AR->subscripts())
        if (sym::SymExpr::fromAst(Sub).references(IndexVar))
          return AR->array();
      for (const mf::Expr *Sub : AR->subscripts())
        if (const mf::Symbol *Found = findIndexArray(Sub))
          return Found;
      return nullptr;
    }
    case mf::ExprKind::Unary:
      return findIndexArray(cast<mf::UnaryExpr>(E)->operand());
    case mf::ExprKind::Binary: {
      const auto *B = cast<mf::BinaryExpr>(E);
      if (const mf::Symbol *Found = findIndexArray(B->lhs()))
        return Found;
      return findIndexArray(B->rhs());
    }
    }
    return nullptr;
  }

  const mf::Symbol *IndexVar;
  unsigned LineElems;
  std::map<const mf::Symbol *, ArrayAcc> Arrays;
  std::set<const mf::Procedure *> SeenCallees;
};

} // namespace

//===----------------------------------------------------------------------===//
// GatherFootprintModel
//===----------------------------------------------------------------------===//

GatherFootprintModel::GatherFootprintModel(const mf::Program &P,
                                           unsigned LineElems)
    : Prog(P), LineElems(std::max(1u, LineElems)) {}

FootprintScore GatherFootprintModel::score(const mf::DoStmt *L,
                                           const xform::LoopPlan *Plan) const {
  (void)Prog;
  ++sched_loops_scored;
  BodyScanner Scanner(L->indexVar(), LineElems);
  Scanner.scanStmts(L->body());

  FootprintScore S;
  S.Arrays = Scanner.take();
  double TotalAccesses = 0;
  for (const ArrayFootprint &A : S.Arrays) {
    S.LinesPerIter += A.linesPerIter(LineElems);
    TotalAccesses += A.Accesses;
    if (A.Pattern == AccessPattern::Gather) {
      S.HasGather = true;
      if (!S.GatherIndex)
        S.GatherIndex = A.IndexArray;
    }
  }
  // The parallelizer's recorded gather fact wins: a runtime-checked index
  // array marks the loop as a gather even when the body classification
  // alone (e.g. after forward substitution) would not.
  if (Plan && Plan->LocalityIndexArray) {
    S.HasGather = true;
    S.GatherIndex = Plan->LocalityIndexArray;
  }
  S.ReuseDensity = TotalAccesses / std::max(S.LinesPerIter, 1e-9);
  if (S.HasGather)
    ++sched_gather_loops;
  return S;
}

SchedulePick GatherFootprintModel::pick(const FootprintScore &S, int64_t NIter,
                                        unsigned Threads) const {
  SchedulePick P;
  P.Align = LineElems;
  if (S.HasGather) {
    // Index-adjacent iterations read adjacent slots of the index array and
    // (after the inspector's reorder pass) hit adjacent target lines: give
    // each worker one big contiguous block so that adjacency stays within
    // a single cache hierarchy.
    P.Sched = interp::Schedule::Static;
    P.ChunkSize = 0;
    P.Rationale = "gather: contiguous per-worker blocks keep index-adjacent "
                  "iterations on one worker";
  } else if (S.ReuseDensity <= 2.0) {
    // Streaming loops touch each line only once or twice; balance tails
    // dynamically but never hand out less than a cache line of work.
    P.Sched = interp::Schedule::Guided;
    P.ChunkSize = LineElems;
    P.Rationale = "streaming: guided with a line-aligned floor balances "
                  "tails without splitting lines";
  } else {
    P.Sched = interp::Schedule::Static;
    P.ChunkSize = 0;
    P.Rationale = "line reuse: static line-aligned blocks preserve spatial "
                  "reuse";
  }
  // Tiny loops: alignment rounding would idle workers for no gain.
  if (NIter > 0 && NIter <= int64_t(Threads))
    P.Align = 1;
  return P;
}
