//===- sched/FootprintModel.h - Locality-aware loop scheduling --*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of locality-aware scheduling (ROADMAP item 4): a
/// GatherFootprintModel that scores each parallel loop's memory-access
/// pattern — stride per array, reuse density, predicted cache-line
/// footprint per iteration — from the normalized AST and the plan's
/// recorded gather facts, and picks a schedule policy, chunk size, and
/// chunk alignment so index-adjacent iterations land on one worker.
///
/// The model is the feedback edge the profiler (src/prof) was built to
/// close: its per-iteration line predictions are validated against the
/// profiler's measured footprints in the tests, and the interpreter
/// consults it when `ExecOptions::Locality` is Model or Reorder. The
/// dynamic half — the inspector's iteration-reorder pass that buckets a
/// runtime-checked gather's iterations by target cache line — lives in
/// interp/Inspector.h; this header also defines the `LocalityMode` knob
/// shared by both halves (`mfpar --locality=off|model|reorder`).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SCHED_FOOTPRINTMODEL_H
#define IAA_SCHED_FOOTPRINTMODEL_H

#include "interp/ThreadPool.h"
#include "mf/Program.h"
#include "xform/Parallelizer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace iaa {
namespace sched {

//===----------------------------------------------------------------------===//
// LocalityMode
//===----------------------------------------------------------------------===//

/// How much locality machinery the runtime applies to parallel loops.
enum class LocalityMode {
  Off,     ///< Schedule exactly as ExecOptions::Sched/ChunkSize say.
  Model,   ///< The footprint model overrides schedule, chunk, and alignment.
  Reorder, ///< Model, plus the inspector's iteration-reorder pass for
           ///< runtime-checked gathers (classic inspector/executor
           ///< aggregation: iterations bucketed by target cache line).
};

const char *localityModeName(LocalityMode M);

/// Parses "off" / "model" / "reorder"; false on anything else.
bool parseLocalityMode(const std::string &Name, LocalityMode &Out);

/// Elements per cache line the model assumes: 64-byte lines over the
/// interpreter's 8-byte (int64/double) elements. Matches the profiler's
/// default SessionOptions::LineBytes, so predictions and measurements are
/// in the same unit.
constexpr unsigned DefaultLineElems = 8;

//===----------------------------------------------------------------------===//
// Access classification
//===----------------------------------------------------------------------===//

/// How one array's subscripts move with the scheduled loop's index.
enum class AccessPattern {
  Invariant,  ///< Subscript does not mention the loop index.
  Contiguous, ///< Affine in the index with |coefficient| 1.
  Strided,    ///< Affine in the index with |coefficient| > 1, or the index
              ///< drives a non-innermost dimension (whole-row stride).
  Gather,     ///< The index reaches the subscript through an index array or
              ///< another non-affine form (mod, div, ...).
};

const char *accessPatternName(AccessPattern P);

/// The model's summary of one array's accesses inside one loop iteration.
struct ArrayFootprint {
  const mf::Symbol *Array = nullptr;
  AccessPattern Pattern = AccessPattern::Invariant;
  /// |coefficient of the loop index| for affine accesses; 0 otherwise.
  int64_t Stride = 0;
  /// The index array a Gather subscript reads (null for non-array gathers
  /// such as mod(i, n)).
  const mf::Symbol *IndexArray = nullptr;
  /// Distinct textual access sites in the body.
  unsigned Accesses = 0;
  bool Written = false;

  /// Expected *new* cache lines this array contributes per iteration:
  /// contiguous streams share a line across LineElems iterations, strided
  /// accesses touch one line every LineElems/Stride iterations, and a
  /// gather is charged a full line per iteration (the model's worst case —
  /// the measured footprint can only be smaller).
  double linesPerIter(unsigned LineElems) const;

  /// Predicted distinct-line footprint over \p NIter iterations (an upper
  /// bound; tests check measured <= predicted <= measured * O(LineElems)).
  uint64_t predictLines(int64_t NIter, unsigned LineElems) const;
};

/// The whole-loop score the schedule pick is made from.
struct FootprintScore {
  std::vector<ArrayFootprint> Arrays;
  /// Sum of the arrays' per-iteration line contributions.
  double LinesPerIter = 0;
  /// Access sites per newly touched line: low density means a streaming
  /// loop (every line used once), high density means line reuse worth
  /// protecting with aligned contiguous chunks.
  double ReuseDensity = 0;
  bool HasGather = false;
  /// The gather index array (the plan's recorded one when available).
  const mf::Symbol *GatherIndex = nullptr;

  /// Predicted distinct-line footprint of the whole loop.
  uint64_t predictLines(int64_t NIter) const;

  std::string str() const;
};

/// The model's verdict: how the ChunkDispenser should run this loop.
struct SchedulePick {
  interp::Schedule Sched = interp::Schedule::Static;
  /// Chunk size for the dispenser (0 = policy default).
  int64_t ChunkSize = 0;
  /// Chunk alignment in iterations: chunk boundaries are rounded up to
  /// multiples of this, so workers never split the iterations that share
  /// one cache line of a contiguous array.
  int64_t Align = 1;
  std::string Rationale;
};

//===----------------------------------------------------------------------===//
// GatherFootprintModel
//===----------------------------------------------------------------------===//

/// Scores loops and picks schedules. Stateless; score() walks the loop
/// body once, so callers memoize per loop (the interpreter does).
class GatherFootprintModel {
public:
  explicit GatherFootprintModel(const mf::Program &P,
                                unsigned LineElems = DefaultLineElems);

  /// Classifies every array access of \p L's body against its index
  /// variable. \p Plan (optional) contributes the parallelizer's recorded
  /// gather index array (LoopPlan::LocalityIndexArray), which marks the
  /// loop as a gather even when the body classification alone would not.
  FootprintScore score(const mf::DoStmt *L,
                       const xform::LoopPlan *Plan = nullptr) const;

  /// Picks schedule policy, chunk size, and alignment for a loop scoring
  /// \p S over \p NIter iterations on \p Threads workers. Gathers get
  /// static contiguous blocks (index-adjacent iterations on one worker);
  /// streaming loops get guided dispatch with a line-aligned floor;
  /// reuse-heavy loops get static line-aligned blocks.
  SchedulePick pick(const FootprintScore &S, int64_t NIter,
                    unsigned Threads) const;

  unsigned lineElems() const { return LineElems; }

private:
  const mf::Program &Prog;
  unsigned LineElems;
};

} // namespace sched
} // namespace iaa

#endif // IAA_SCHED_FOOTPRINTMODEL_H
