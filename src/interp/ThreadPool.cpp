//===- interp/ThreadPool.cpp - Persistent parallel-loop runtime -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/ThreadPool.h"

#include "support/Statistic.h"
#include "support/Trace.h"

#include <algorithm>
#include <string>

using namespace iaa;
using namespace iaa::interp;

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

WorkerPool::WorkerPool(unsigned MaxWorkers)
    : MaxWorkers(std::max(1u, MaxWorkers)) {
  Threads.reserve(this->MaxWorkers - 1);
  for (unsigned W = 1; W < this->MaxWorkers; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Shutdown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::workerLoop(unsigned Id) {
  uint64_t SeenGen = 0;
  while (true) {
    const std::function<void(unsigned)> *MyJob = nullptr;
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCv.wait(Lock, [&] { return Shutdown || Generation != SeenGen; });
      if (Shutdown)
        return;
      SeenGen = Generation;
      if (Id < ActiveWorkers)
        MyJob = Job;
    }
    if (!MyJob)
      continue; // Parked out of this generation's worker set.
    (*MyJob)(Id);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Outstanding == 0)
        DoneCv.notify_all();
    }
  }
}

void WorkerPool::run(unsigned Workers,
                     const std::function<void(unsigned)> &Fn) {
  Workers = std::min(Workers, MaxWorkers);
  if (Workers <= 1) {
    Fn(0);
    return;
  }
  // One fork/join at a time: concurrent requester threads (shared daemon
  // pool) queue here, so the Job/Generation handshake below never sees two
  // callers at once.
  std::lock_guard<std::mutex> RunLock(RunM);
  trace::TraceScope Span("fork-join", "interp");
  Span.arg("workers", std::to_string(Workers));
  // Workers run with the forking thread's session context installed, so a
  // shared pool attributes counters and spans to the right session.
  stat::Collector *SessionStats = stat::currentCollector();
  trace::Buffer *SessionTrace = trace::currentBuffer();
  const std::function<void(unsigned)> Wrapped =
      [&Fn, SessionStats, SessionTrace](unsigned W) {
        stat::CollectorScope StatScope(SessionStats);
        trace::BufferScope TraceScope(SessionTrace);
        Fn(W);
      };
  {
    std::lock_guard<std::mutex> Lock(M);
    Job = &Wrapped;
    ActiveWorkers = Workers;
    Outstanding = Workers - 1;
    ++Generation;
  }
  WakeCv.notify_all();
  Fn(0); // The caller already holds its own context.
  std::unique_lock<std::mutex> Lock(M);
  DoneCv.wait(Lock, [&] { return Outstanding == 0; });
  Job = nullptr;
}

//===----------------------------------------------------------------------===//
// Loop scheduling
//===----------------------------------------------------------------------===//

const char *interp::scheduleName(Schedule S) {
  switch (S) {
  case Schedule::Static: return "static";
  case Schedule::Dynamic: return "dynamic";
  case Schedule::Guided: return "guided";
  }
  return "?";
}

bool interp::parseSchedule(const std::string &Name, Schedule &Out) {
  if (Name == "static")
    Out = Schedule::Static;
  else if (Name == "dynamic")
    Out = Schedule::Dynamic;
  else if (Name == "guided")
    Out = Schedule::Guided;
  else
    return false;
  return true;
}

ChunkDispenser::ChunkDispenser(int64_t Lo, int64_t Up, unsigned Workers,
                               Schedule Sched, int64_t ChunkSize,
                               int64_t Align)
    : Lo(Lo), Up(Up), Workers(std::max(1u, Workers)), Sched(Sched),
      Align(std::max<int64_t>(1, Align)),
      Iterations(Up >= Lo ? Up - Lo + 1 : 0), Cursor(Lo) {
  int64_t NIter = Iterations;
  switch (Sched) {
  case Schedule::Static:
    // Default: one contiguous block per worker (ceil split), the classic
    // parallel-do decomposition; an explicit chunk deals blocks round-robin.
    Chunk = ChunkSize > 0
                ? ChunkSize
                : std::max<int64_t>(1, (NIter + this->Workers - 1) /
                                           this->Workers);
    StaticBlock.resize(this->Workers);
    for (unsigned W = 0; W < this->Workers; ++W)
      StaticBlock[W] = W;
    break;
  case Schedule::Dynamic:
    Chunk = ChunkSize > 0 ? ChunkSize : 1;
    break;
  case Schedule::Guided:
    Chunk = ChunkSize > 0 ? ChunkSize : 1; // Minimum grab size.
    break;
  }
  // Chunk boundaries land on Lo + k*Chunk (static/dynamic) or on multiples
  // of each grab size (guided), so rounding sizes up to Align multiples
  // keeps line-sharing iterations together; the final chunk still clamps.
  Chunk = (Chunk + this->Align - 1) / this->Align * this->Align;
}

bool ChunkDispenser::next(unsigned W, int64_t &First, int64_t &Last,
                          unsigned &ChunkId) {
  // Zero-trip guard (Up < Lo): nothing to dispense under any policy, and
  // the per-policy cursors below must stay untouched so arbitrarily many
  // polls of an empty space stay safe. A cancelled dispenser likewise
  // dispenses nothing more, so faulting loops drain at chunk granularity.
  if (Iterations == 0 || Cancelled.load(std::memory_order_acquire))
    return false;
  switch (Sched) {
  case Schedule::Static: {
    // Per-worker cursor: worker W owns blocks W, W+Workers, W+2*Workers...
    // No cross-thread state is touched besides the dispense counter.
    int64_t Block = StaticBlock[W];
    First = Lo + Block * Chunk;
    if (First > Up)
      return false;
    StaticBlock[W] = Block + Workers;
    Last = std::min(Up, First + Chunk - 1);
    break;
  }
  case Schedule::Dynamic: {
    // Claim by compare-exchange rather than an unconditional fetch_add:
    // exhausted polls must not keep advancing the cursor (a worker spinning
    // on an empty dispenser would eventually overflow it).
    int64_t Cur = Cursor.load(std::memory_order_relaxed);
    do {
      if (Cur > Up)
        return false;
    } while (!Cursor.compare_exchange_weak(Cur, Cur + Chunk,
                                           std::memory_order_relaxed));
    First = Cur;
    Last = std::min(Up, First + Chunk - 1);
    break;
  }
  case Schedule::Guided: {
    int64_t Cur = Cursor.load(std::memory_order_relaxed);
    int64_t Size;
    do {
      if (Cur > Up)
        return false;
      int64_t Remaining = Up - Cur + 1;
      Size = std::max(Chunk, Remaining / static_cast<int64_t>(Workers));
      Size = (Size + Align - 1) / Align * Align;
      // Clamp after applying the floor and alignment: a floor (or rounded
      // size) larger than what remains must not overshoot Up.
      Size = std::min(Size, Remaining);
    } while (!Cursor.compare_exchange_weak(Cur, Cur + Size,
                                           std::memory_order_relaxed));
    First = Cur;
    Last = Cur + Size - 1;
    break;
  }
  }
  ChunkId = Dispensed.fetch_add(1, std::memory_order_relaxed);
  return true;
}
