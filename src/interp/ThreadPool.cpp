//===- interp/ThreadPool.cpp - Fork/join helper ---------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/ThreadPool.h"

#include "support/Trace.h"

#include <string>
#include <thread>
#include <vector>

using namespace iaa;

void iaa::interp::forkJoin(unsigned Workers,
                           const std::function<void(unsigned)> &Fn) {
  if (Workers <= 1) {
    Fn(0);
    return;
  }
  trace::TraceScope Span("fork-join", "interp");
  Span.arg("workers", std::to_string(Workers));
  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back([&Fn, W] { Fn(W); });
  Fn(0);
  for (std::thread &T : Threads)
    T.join();
}
