//===- interp/Interpreter.h - MF execution engine ---------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking executor for MF programs, with a parallel do-loop mode
/// driven by the parallelizer's plans. This is the runtime substrate for the
/// speedup experiments (Fig. 16): a loop the pipeline marked parallel is
/// executed fork/join on a persistent WorkerPool, with iteration chunks
/// handed out by a ChunkDispenser under a static, dynamic, or guided
/// schedule; arrays and scalars the plan privatized get per-worker copies
/// built on the worker's first chunk; recognized sum reductions use
/// per-worker partials merged after the join; the worker that executed the
/// loop's *final iteration* writes its private copies back (Fortran's
/// last-value semantics — never an idle worker's untouched copy-in).
///
/// Correctness is checked in the tests by comparing checksums of parallel
/// and serial runs of every benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_INTERPRETER_H
#define IAA_INTERP_INTERPRETER_H

#include "interp/Fault.h"
#include "interp/ThreadPool.h"
#include "mf/Program.h"
#include "sched/FootprintModel.h"
#include "support/Remarks.h"
#include "xform/Parallelizer.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace iaa {

namespace prof {
class Session;
} // namespace prof

namespace vm {
class BytecodeCache;
} // namespace vm

namespace interp {

/// Storage for one variable: a scalar is a size-1 buffer.
struct Buffer {
  mf::ScalarKind Kind = mf::ScalarKind::Int;
  std::vector<int64_t> I;
  std::vector<double> D;
  /// Bumped on every serial-context write and once per parallel loop that
  /// writes the symbol. Keys the inspector's verdict cache: a runtime-check
  /// verdict stays valid while the versions of every inspected index array
  /// are unchanged.
  uint64_t Version = 0;

  size_t size() const {
    return Kind == mf::ScalarKind::Int ? I.size() : D.size();
  }
};

/// Whole-program memory: one buffer per symbol, indexed by symbol id.
class Memory {
public:
  /// Empty memory (no symbols); what Interpreter::run returns when the
  /// allocating constructor itself faults.
  Memory() = default;

  /// Allocates a buffer per symbol. Throws FaultException (kind BadExtent
  /// or DivByZero) on a non-constant, non-positive, or overflowing extent —
  /// the element-count multiply is overflow-checked and the total
  /// allocation is capped, so a hostile extent can neither wrap to a
  /// too-small buffer nor drive the process out of memory.
  ///
  /// \p LimitBytes > 0 additionally enforces a per-request memory budget:
  /// when the running total of buffer bytes would exceed it, allocation
  /// stops with a structured ResourceExhausted fault (never a bad_alloc),
  /// carrying the requested total and the budget as value/bound.
  explicit Memory(const mf::Program &P, size_t LimitBytes = 0);

  Buffer &buffer(const mf::Symbol *S) { return Buffers[S->id()]; }
  const Buffer &buffer(const mf::Symbol *S) const { return Buffers[S->id()]; }

  int64_t intScalar(const mf::Symbol *S) const { return Buffers[S->id()].I[0]; }
  double realScalar(const mf::Symbol *S) const { return Buffers[S->id()].D[0]; }

  /// A deterministic digest of all variables, for serial/parallel
  /// equivalence checks.
  double checksum() const;

  /// Digest that skips the buffers of the given symbol ids. Arrays that a
  /// parallel plan privatized and that are dead after the loop have
  /// unspecified contents (OpenMP PRIVATE semantics) and must be excluded
  /// when comparing against a serial run.
  double checksumExcluding(const std::set<unsigned> &ExcludeIds) const;

private:
  std::vector<Buffer> Buffers;
};

/// The symbol ids whose post-run contents are unspecified under \p Plans
/// (privatized arrays of parallel loops).
std::set<unsigned> deadPrivateIds(const xform::PipelineResult &Plans);

/// Which engine executes the bodies of parallel-dispatched loops. Serial
/// code, serial fallbacks, race-checked loops, and fault replays always run
/// on the tree-walking interpreter — it is the semantic reference.
enum class ExecEngine {
  Interp, ///< Tree-walk everything (the reference engine).
  Vm,     ///< Parallel chunks run compiled register bytecode (vm/Vm.h);
          ///< loops the bytecode compiler bails on fall back to the
          ///< tree walk per loop.
  Both,   ///< Differential oracle: run the whole program twice — once per
          ///< engine — and compare final-memory checksums (or fault kinds
          ///< when a run faults terminally). A divergence is reported as
          ///< an Internal fault. Returns the VM run's memory.
};

const char *engineName(ExecEngine E);
/// Parses "interp" / "vm" / "both"; returns false on anything else.
bool parseEngine(const std::string &Name, ExecEngine &Out);

/// Execution options.
struct ExecOptions {
  /// Parallel plans; null runs everything serially.
  const xform::PipelineResult *Plans = nullptr;
  /// Worker count for parallel loops.
  unsigned Threads = 1;
  /// Simulated multiprocessor mode: chunks run sequentially, each timed,
  /// and a parallel loop costs max(chunk times) plus a fork/join overhead
  /// of ForkAlpha + ForkBeta * Threads seconds. Semantically identical to
  /// the threaded mode; used to reproduce the Fig. 16 speedup curves on
  /// hosts without enough cores (speedup *shape* — Amdahl fractions, load
  /// imbalance, per-invocation overhead — is preserved).
  bool Simulate = false;
  double ForkAlpha = 50e-6;
  double ForkBeta = 3e-6;
  /// Profitability heuristic: a marked-parallel loop only forks when its
  /// estimated work (trip count times a static body weight, nested loops
  /// assumed 16 iterations) reaches this threshold. Vendor parallelizers
  /// guard tiny loops the same way; set to 0 for Polaris-faithful
  /// unguarded execution (the paper's Fig. 16(e) tiny-input slowdown needs
  /// the guard off).
  int64_t MinParallelWork = 1024;
  /// How parallel loops divide iterations among workers (see Schedule).
  Schedule Sched = Schedule::Static;
  /// Chunk size for the dispenser; 0 picks the policy default (static:
  /// ceil(NIter/Threads), dynamic: 1, guided: a floor of 1).
  int64_t ChunkSize = 0;
  /// Shadow-memory race checking: every plan-marked loop runs serially
  /// (bypassing the profitability guard) under per-element last-writer /
  /// last-reader iteration tags, and every cross-iteration conflict not
  /// covered by the plan's proof obligations is recorded in
  /// ExecStats::Races. The ground truth the plan auditor is checked
  /// against (see verify/PlanAudit.h).
  bool RaceCheck = false;
  /// Inspector/executor mode: loops the pipeline emitted as
  /// runtime-conditional (LoopPlan::RuntimeChecks) are inspected with an
  /// O(n) scan of their index arrays before the first execution; the loop
  /// runs parallel when every check passes and serial otherwise. Verdicts
  /// are cached keyed on the inspected arrays' version counters, so
  /// repeated invocations skip re-inspection until an index array is
  /// rewritten. Only meaningful together with Plans and Threads > 1.
  bool RuntimeChecks = false;
  /// Fault-containment policy for parallel loops. Under Report and Replay,
  /// every parallel (or runtime-conditional) dispatch snapshots the loop's
  /// MAY-written shared buffers first; a worker fault is trapped locally,
  /// published first-fault-wins, cancels the chunk dispenser, and after the
  /// join the snapshot is rolled back — contents *and* version counters,
  /// since the restored bytes are exactly the pre-loop bytes, so inspector
  /// verdicts and locality permutations cached against them stay valid.
  /// Replay additionally
  /// re-executes the loop serially: it either reproduces the fault with
  /// exact serial attribution or completes correctly when the fault was an
  /// artifact of parallel execution. Abort skips the snapshot and
  /// propagates the first fault with shared state possibly torn (legacy
  /// semantics, minus the process abort). Serial faults always unwind to
  /// Interpreter::faultState() regardless of this setting.
  FaultAction OnFault = FaultAction::Replay;
  /// Test-only fault-injection hook (see FaultInjectionHook); null in
  /// production runs.
  const FaultInjectionHook *Injector = nullptr;
  /// Locality-aware scheduling (sched/FootprintModel.h). Model lets the
  /// static GatherFootprintModel override Sched/ChunkSize (and align chunk
  /// boundaries to cache lines) per parallel loop; Reorder additionally
  /// executes runtime-conditional loops that passed inspection in the
  /// inspector's line-bucketed iteration order (permutations are cached
  /// under the same Buffer::Version keys as inspection verdicts). Results
  /// are bit-identical across all modes.
  sched::LocalityMode Locality = sched::LocalityMode::Off;
  /// Memory-access profiling session (prof/Profiler.h); null disables all
  /// profiling hooks. The interpreter records, per labeled-loop
  /// invocation, sampled cache-line access streams, per-worker chunk
  /// timelines, dispatch decisions, and analysis-cost attribution into the
  /// session. Observation only: program results are bit-identical with
  /// profiling on or off.
  prof::Session *Prof = nullptr;
  /// Engine for parallel-dispatched loop bodies (see ExecEngine). Interp
  /// is the reference tree walk; Vm lowers eligible certified loops to
  /// register bytecode (bailing back to the tree walk per loop); Both runs
  /// the program on each engine and checks bit-identical results.
  ExecEngine Engine = ExecEngine::Interp;
  /// Cooperative cancellation (request deadlines). When set, the
  /// interpreter polls the token at iteration and chunk boundaries; a fired
  /// token raises a DeadlineExceeded fault through the normal containment
  /// path — parallel loops drain the dispenser, roll back their write-set
  /// snapshot, and the run unwinds with faultState() reporting the
  /// deadline. Resource-limit faults skip serial replay (the budget stays
  /// blown), so OnFault=Replay degrades to rollback-and-report for them.
  const CancelToken *Cancel = nullptr;
  /// Per-request memory budget in bytes forwarded to the Memory
  /// constructor by Interpreter::run; 0 = unlimited. Over-budget
  /// allocation faults ResourceExhausted before touching the heap.
  size_t MemLimitBytes = 0;
  /// Shared fork/join pool (the mfpard daemon shares one across requests).
  /// Used when it has at least Threads workers; otherwise the interpreter
  /// lazily builds its own pool as before. Concurrent requests serialize
  /// at fork/join granularity inside WorkerPool::run.
  WorkerPool *SharedPool = nullptr;
};

/// Classification of one dynamically observed cross-iteration conflict.
enum class RaceKind {
  WriteWrite,         ///< Two iterations write the same shared element.
  ReadAfterWrite,     ///< Flow: a later iteration reads an earlier write.
  WriteAfterRead,     ///< Anti: a later iteration overwrites an earlier read.
  ExposedPrivateRead, ///< A privatized array element is read before any
                      ///< write of the same iteration (the copy-in value
                      ///< would differ between workers).
  LastValueLoss,      ///< A live-out privatized element's final write is not
                      ///< in the final iteration (the writeback would lose
                      ///< it).
};

const char *raceKindName(RaceKind K);

/// One conflict found by the shadow-memory race checker.
struct RaceRecord {
  std::string Loop;   ///< Label of the monitored loop.
  std::string Var;    ///< Conflicting variable.
  size_t Element = 0; ///< Linearized element index (0 for scalars).
  std::int64_t IterA = 0; ///< Earlier iteration of the pair.
  std::int64_t IterB = 0; ///< Later iteration (or the final one).
  RaceKind Kind = RaceKind::WriteWrite;

  std::string str() const;
};

/// Per-run execution statistics. In simulated mode every time below is
/// virtual time (wall time minus the serialized surplus of simulated
/// parallel loops); in threaded/serial mode it equals wall time.
struct ExecStats {
  /// Seconds per labeled loop (accumulated over invocations, measured at
  /// the outermost entry of that label).
  std::map<std::string, double> LoopSeconds;
  double TotalSeconds = 0;
  /// Actual wall-clock seconds of the run.
  double WallSeconds = 0;
  /// Number of loop invocations executed in parallel.
  unsigned ParallelLoopRuns = 0;
  /// Number of iteration chunks executed by parallel loops. Fed by the
  /// chunk dispenser, which never hands out empty chunks, so this counts
  /// only chunks that ran at least one iteration.
  unsigned ChunksRun = 0;
  /// Workers that executed at least one chunk, accumulated over parallel
  /// loop invocations. Less than ParallelLoopRuns * Threads when the
  /// iteration space did not fill every worker (e.g. NIter=6 over T=4 under
  /// the static schedule leaves one worker idle).
  unsigned WorkersEngaged = 0;
  /// Sum and max of per-chunk body seconds, over every parallel loop
  /// invocation. max * ChunksRun / sum ≈ 1 means balanced work; larger
  /// values expose imbalance (also visible per-chunk in the trace).
  double ChunkSecondsSum = 0;
  double ChunkSecondsMax = 0;
  /// Conflicts observed by the shadow-memory race checker
  /// (ExecOptions::RaceCheck). Capped at a small number of stored records;
  /// RacesFound counts every observation.
  std::vector<RaceRecord> Races;
  unsigned RacesFound = 0;

  /// Per-loop dispatch tier over serial-context loop invocations (the
  /// --stats "dispatch" group mirrors these as global counters). The four
  /// tiers partition every dispatch decision — one tier per invocation:
  /// static (parallel on a static proof, no inspection), conditional
  /// (decided by the runtime-check inspector, whichever way it fell),
  /// serial (no inspector consulted), replay (dispatched parallel but
  /// faulted, rolled back, and serially replayed — the replay's nested
  /// loops and the original parallel tier are *not* double-counted).
  unsigned DispatchStatic = 0;
  unsigned DispatchConditional = 0;
  unsigned DispatchSerial = 0;
  unsigned DispatchReplay = 0;

  /// Inspector/executor runtime checks (ExecOptions::RuntimeChecks).
  unsigned InspectionsRun = 0;    ///< Fresh O(n) inspections executed.
  unsigned InspectionsCached = 0; ///< Verdicts served from the version cache.
  unsigned RuntimeCheckFails = 0; ///< Decisions that fell back to serial.
  /// One record per runtime-check dispatch decision (capped at 64).
  struct RuntimeDecision {
    std::string Loop;   ///< Label of the conditional loop.
    bool Cached = false; ///< Verdict came from the version cache.
    bool Pass = false;   ///< Parallel dispatch (all checks passed).
    std::string Detail; ///< The failing check, empty on pass.

    std::string str() const;
  };
  std::vector<RuntimeDecision> RuntimeDecisions;

  /// Locality-aware scheduling (ExecOptions::Locality).
  unsigned LocalityModelPicks = 0; ///< Parallel dispatches scheduled by the
                                   ///< footprint model.
  unsigned LocalityReorders = 0;   ///< Fresh iteration permutations built.
  unsigned LocalityReordersCached = 0; ///< Permutations reused from cache.

  /// Fault containment (ExecOptions::OnFault).
  unsigned WorkerFaults = 0;   ///< Faults trapped inside parallel workers.
  unsigned FaultRollbacks = 0; ///< Loop transactions rolled back.
  unsigned FaultReplays = 0;   ///< Serial replays executed after rollback.
  /// One FaultReplay remark per rolled-back parallel loop (capped at 64),
  /// stating the trapped fault and whether the serial replay recovered or
  /// reproduced it.
  std::vector<Remark> FaultRemarks;

  /// Bytecode VM engine (ExecOptions::Engine == Vm or Both).
  unsigned VmLoopsCompiled = 0; ///< Distinct loops lowered to bytecode.
  unsigned VmBailouts = 0; ///< Distinct loops the VM compiler rejected
                           ///< (they stay on the tree walk).
  unsigned VmParallelLoopRuns = 0; ///< Parallel invocations executed on
                                   ///< the VM (subset of ParallelLoopRuns).
  unsigned VmChunksRun = 0; ///< Chunks executed as bytecode.
  /// Differential oracle (Engine == Both): whole-program interp-vs-VM
  /// comparisons made and how many diverged (a divergence also surfaces as
  /// an Internal fault in Interpreter::faultState).
  unsigned BothComparisons = 0;
  unsigned BothMismatches = 0;
};

/// Session-lifetime runtime caches. One Interpreter owns one instance, so
/// inspector verdicts (keyed on Buffer::Version counters), locality
/// permutations, footprint-model schedules, body-weight estimates, loop
/// write-sets, and compiled VM bytecode persist across run() calls — a
/// daemon session re-running the same cached program skips re-inspection
/// and re-lowering on later requests. Defined in Interpreter.cpp; opaque
/// here.
class RuntimeCaches;

/// Runs \p P (starting at "main") against fresh memory; returns the final
/// memory and fills \p Stats if given. An Interpreter may be reused across
/// runs (a daemon session keeps one per cached program): its RuntimeCaches
/// carry version-keyed verdicts between runs, which is sound because every
/// run starts from fresh Memory whose version counters evolve
/// deterministically.
class Interpreter {
public:
  explicit Interpreter(const mf::Program &P);
  ~Interpreter();

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  /// Executes the program; the returned Memory holds the final state. A
  /// program-level fault never aborts the process: serial faults unwind
  /// here (the returned memory holds the state at the fault, rolled-back
  /// loops excepted) and faultState() reports what happened; parallel-
  /// worker faults are contained per ExecOptions::OnFault.
  Memory run(const ExecOptions &Opts, ExecStats *Stats = nullptr);

  /// Fault summary of the most recent run (reset on each run call).
  const FaultState &faultState() const { return LastFault; }

  /// Installs a shared compiled-bytecode store (the daemon artifact cache
  /// shares one per cached program, so one session's lowering work is
  /// visible to every session running that program). Call between runs,
  /// not during one. Null restores the private per-interpreter store.
  void setBytecodeCache(std::shared_ptr<vm::BytecodeCache> Cache);

private:
  const mf::Program &Prog;
  FaultState LastFault;
  std::unique_ptr<RuntimeCaches> Caches;
};

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_INTERPRETER_H
