//===- interp/Interpreter.cpp - MF execution engine -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "analysis/GlobalConstants.h"
#include "analysis/SymbolUses.h"
#include "interp/Inspector.h"
#include "interp/ThreadPool.h"
#include "support/Saturating.h"
#include "support/Statistic.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;

#define IAA_STAT_GROUP "interp"
IAA_STAT(interp_runs, "Interpreter runs");
IAA_STAT(interp_parallel_loop_runs, "Loop invocations executed in parallel");
IAA_STAT(interp_chunks_run, "Iteration chunks executed by parallel loops");
IAA_STAT(interp_inspections_run, "Fresh runtime-check inspections executed");
IAA_STAT(interp_inspections_cached,
         "Runtime-check verdicts served from the version cache");
IAA_STAT(interp_runtime_check_fails,
         "Runtime-check decisions that fell back to serial");

namespace {

[[noreturn]] void runtimeFault(const char *Message) {
  std::fprintf(stderr, "iaa interpreter fault: %s\n", Message);
  std::abort();
}

/// A dynamically typed value.
struct Value {
  bool IsInt = true;
  int64_t I = 0;
  double D = 0;

  static Value ofInt(int64_t V) { return {true, V, 0}; }
  static Value ofReal(double V) { return {false, 0, V}; }

  int64_t asInt() const { return IsInt ? I : static_cast<int64_t>(D); }
  double asReal() const { return IsInt ? static_cast<double>(I) : D; }
  bool truthy() const { return IsInt ? I != 0 : D != 0; }
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

Memory::Memory(const Program &P) {
  analysis::GlobalConstants Consts(P);
  Buffers.resize(P.numSymbols());

  // Resolve a (possibly symbolic) extent using whole-program constants.
  std::function<int64_t(const Expr *)> EvalExtent = [&](const Expr *E)
      -> int64_t {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return cast<IntLit>(E)->value();
    case ExprKind::VarRef: {
      auto V = Consts.valueOf(cast<VarRef>(E)->symbol());
      if (!V)
        runtimeFault("array extent is not a program constant");
      return *V;
    }
    case ExprKind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      int64_t L = EvalExtent(BE->lhs());
      int64_t R = EvalExtent(BE->rhs());
      switch (BE->op()) {
      case BinaryOp::Add: return L + R;
      case BinaryOp::Sub: return L - R;
      case BinaryOp::Mul: return L * R;
      case BinaryOp::Div:
        if (!R)
          runtimeFault("division by zero in array extent");
        return L / R;
      default: runtimeFault("unsupported operator in array extent");
      }
    }
    default:
      runtimeFault("unsupported array extent expression");
    }
  };

  for (const Symbol *S : P.symbols()) {
    Buffer &B = Buffers[S->id()];
    B.Kind = S->elementKind();
    size_t Elems = 1;
    for (unsigned D = 0; D < S->rank(); ++D) {
      int64_t Extent = EvalExtent(S->extent(D));
      if (Extent <= 0)
        runtimeFault("array extent must be positive");
      Elems *= static_cast<size_t>(Extent);
    }
    if (B.Kind == ScalarKind::Int)
      B.I.assign(Elems, 0);
    else
      B.D.assign(Elems, 0.0);
  }
}

double Memory::checksum() const { return checksumExcluding({}); }

double Memory::checksumExcluding(const std::set<unsigned> &ExcludeIds) const {
  double Sum = 0;
  for (unsigned Id = 0; Id < Buffers.size(); ++Id) {
    if (ExcludeIds.count(Id))
      continue;
    const Buffer &B = Buffers[Id];
    if (B.Kind == ScalarKind::Int) {
      for (size_t I = 0; I < B.I.size(); ++I)
        Sum += static_cast<double>(B.I[I]) * static_cast<double>(I % 7 + 1);
    } else {
      for (size_t I = 0; I < B.D.size(); ++I)
        Sum += B.D[I] * static_cast<double>(I % 7 + 1);
    }
  }
  return Sum;
}

std::set<unsigned> interp::deadPrivateIds(const xform::PipelineResult &Plans) {
  std::set<unsigned> Ids;
  for (const auto &[Loop, Plan] : Plans.Plans) {
    // Runtime-conditional plans privatize the same arrays when their
    // inspection passes; after a serial fallback the contents are the
    // (well-defined) serial values, but excluding them keeps the digest
    // comparable whichever way the dispatch went.
    if (!Plan.Parallel &&
        !(Plan.RuntimeConditional && !Plan.RuntimeChecks.empty()))
      continue;
    for (const mf::Symbol *S : Plan.PrivateArrays)
      if (!Plan.LiveOutArrays.count(S))
        Ids.insert(S->id());
  }
  return Ids;
}

//===----------------------------------------------------------------------===//
// Race records
//===----------------------------------------------------------------------===//

const char *interp::raceKindName(RaceKind K) {
  switch (K) {
  case RaceKind::WriteWrite:         return "write-write";
  case RaceKind::ReadAfterWrite:     return "read-after-write";
  case RaceKind::WriteAfterRead:     return "write-after-read";
  case RaceKind::ExposedPrivateRead: return "exposed-private-read";
  case RaceKind::LastValueLoss:      return "last-value-loss";
  }
  return "?";
}

std::string RaceRecord::str() const {
  return Loop + ": " + raceKindName(Kind) + " on " + Var + "[" +
         std::to_string(Element) + "] between iterations " +
         std::to_string(IterA) + " and " + std::to_string(IterB);
}

std::string ExecStats::RuntimeDecision::str() const {
  std::string S = Loop + ": ";
  S += Pass ? "inspection passed, parallel dispatch"
            : "runtime check failed, serial fallback";
  if (Cached)
    S += " (cached verdict)";
  if (!Pass && !Detail.empty())
    S += " [" + Detail + "]";
  return S;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

class Exec {
public:
  Exec(const Program &P, Memory &Mem, const ExecOptions &Opts,
       ExecStats *Stats)
      : Prog(P), Mem(Mem), Opts(Opts), Stats(Stats) {
    // Pre-compute per-array dimension extents for subscript linearization.
    analysis::GlobalConstants Consts(P);
    DimExtents.resize(P.numSymbols());
    for (const Symbol *S : P.symbols()) {
      if (!S->isArray())
        continue;
      auto &Out = DimExtents[S->id()];
      for (unsigned D = 0; D < S->rank(); ++D) {
        const Expr *E = S->extent(D);
        sym::SymExpr SE = sym::SymExpr::fromAst(E);
        int64_t V = 0;
        if (SE.isConstant()) {
          V = SE.constValue();
        } else {
          // Single-symbol extents were validated by Memory already.
          bool Found = false;
          for (const Symbol *Sym2 : P.symbols()) {
            if (!Sym2->isArray() && SE.equals(sym::SymExpr::var(Sym2)))
              if (auto C = Consts.valueOf(Sym2)) {
                V = *C;
                Found = true;
                break;
              }
          }
          if (!Found) {
            // General constant-foldable extent.
            sym::RangeEnv Env;
            Consts.bindAll(Env);
            sym::ConstRange R = sym::evalConstRange(SE, Env);
            if (R.Lo && R.Hi && *R.Lo == *R.Hi)
              V = *R.Lo;
            else
              runtimeFault("array extent is not a program constant");
          }
        }
        Out.push_back(V);
      }
    }
  }

  struct Frame {
    std::unordered_map<unsigned, Buffer> *Overrides = nullptr;
    bool InParallel = false;
  };

  void runMain() {
    const Procedure *Main = Prog.mainProcedure();
    if (!Main)
      runtimeFault("program has no main body");
    Frame F;
    execBody(Main->body(), F);
  }

private:
  Buffer &bufferFor(const Symbol *S, Frame &F) {
    if (F.Overrides) {
      auto It = F.Overrides->find(S->id());
      if (It != F.Overrides->end())
        return It->second;
    }
    return Mem.buffer(S);
  }

  size_t linearIndex(const mf::ArrayRef *AR, Frame &F) {
    const Symbol *S = AR->array();
    const auto &Ext = DimExtents[S->id()];
    size_t Idx = 0;
    for (unsigned D = 0; D < AR->rank(); ++D) {
      int64_t Sub = eval(AR->subscript(D), F).asInt();
      if (Sub < 1 || Sub > Ext[D])
        runtimeFault("array subscript out of bounds");
      Idx = Idx * static_cast<size_t>(Ext[D]) + static_cast<size_t>(Sub - 1);
    }
    return Idx;
  }

  Value eval(const Expr *E, Frame &F) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Value::ofInt(cast<IntLit>(E)->value());
    case ExprKind::RealLit:
      return Value::ofReal(cast<RealLit>(E)->value());
    case ExprKind::VarRef: {
      const Symbol *S = cast<VarRef>(E)->symbol();
      if (!Monitors.empty())
        noteRead(S, 0);
      Buffer &B = bufferFor(S, F);
      return B.Kind == ScalarKind::Int ? Value::ofInt(B.I[0])
                                       : Value::ofReal(B.D[0]);
    }
    case ExprKind::ArrayRef: {
      const auto *AR = cast<mf::ArrayRef>(E);
      Buffer &B = bufferFor(AR->array(), F);
      size_t Idx = linearIndex(AR, F);
      if (!Monitors.empty())
        noteRead(AR->array(), Idx);
      return B.Kind == ScalarKind::Int ? Value::ofInt(B.I[Idx])
                                       : Value::ofReal(B.D[Idx]);
    }
    case ExprKind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      Value V = eval(UE->operand(), F);
      if (UE->op() == UnaryOp::Neg)
        return V.IsInt ? Value::ofInt(-V.I) : Value::ofReal(-V.D);
      return Value::ofInt(V.truthy() ? 0 : 1);
    }
    case ExprKind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      Value L = eval(BE->lhs(), F);
      // Short-circuit logicals.
      if (BE->op() == BinaryOp::And) {
        if (!L.truthy())
          return Value::ofInt(0);
        return Value::ofInt(eval(BE->rhs(), F).truthy() ? 1 : 0);
      }
      if (BE->op() == BinaryOp::Or) {
        if (L.truthy())
          return Value::ofInt(1);
        return Value::ofInt(eval(BE->rhs(), F).truthy() ? 1 : 0);
      }
      Value R = eval(BE->rhs(), F);
      bool BothInt = L.IsInt && R.IsInt;
      switch (BE->op()) {
      case BinaryOp::Add:
        return BothInt ? Value::ofInt(L.I + R.I)
                       : Value::ofReal(L.asReal() + R.asReal());
      case BinaryOp::Sub:
        return BothInt ? Value::ofInt(L.I - R.I)
                       : Value::ofReal(L.asReal() - R.asReal());
      case BinaryOp::Mul:
        return BothInt ? Value::ofInt(L.I * R.I)
                       : Value::ofReal(L.asReal() * R.asReal());
      case BinaryOp::Div:
        if (BothInt) {
          if (R.I == 0)
            runtimeFault("integer division by zero");
          return Value::ofInt(L.I / R.I);
        }
        return Value::ofReal(L.asReal() / R.asReal());
      case BinaryOp::Mod:
        if (BothInt) {
          if (R.I == 0)
            runtimeFault("mod by zero");
          return Value::ofInt(L.I % R.I);
        }
        runtimeFault("mod on real operands");
      case BinaryOp::Min:
        return BothInt ? Value::ofInt(std::min(L.I, R.I))
                       : Value::ofReal(std::min(L.asReal(), R.asReal()));
      case BinaryOp::Max:
        return BothInt ? Value::ofInt(std::max(L.I, R.I))
                       : Value::ofReal(std::max(L.asReal(), R.asReal()));
      case BinaryOp::Eq:
        return Value::ofInt(BothInt ? L.I == R.I : L.asReal() == R.asReal());
      case BinaryOp::Ne:
        return Value::ofInt(BothInt ? L.I != R.I : L.asReal() != R.asReal());
      case BinaryOp::Lt:
        return Value::ofInt(BothInt ? L.I < R.I : L.asReal() < R.asReal());
      case BinaryOp::Le:
        return Value::ofInt(BothInt ? L.I <= R.I : L.asReal() <= R.asReal());
      case BinaryOp::Gt:
        return Value::ofInt(BothInt ? L.I > R.I : L.asReal() > R.asReal());
      case BinaryOp::Ge:
        return Value::ofInt(BothInt ? L.I >= R.I : L.asReal() >= R.asReal());
      case BinaryOp::And:
      case BinaryOp::Or:
        break; // Handled above.
      }
      runtimeFault("unhandled binary operator");
    }
    }
    runtimeFault("unhandled expression kind");
  }

  void store(const Expr *Target, Value V, Frame &F) {
    if (const auto *VR = dyn_cast<VarRef>(Target)) {
      if (!Monitors.empty())
        noteWrite(VR->symbol(), 0);
      Buffer &B = bufferFor(VR->symbol(), F);
      if (!F.InParallel)
        ++B.Version;
      if (B.Kind == ScalarKind::Int)
        B.I[0] = V.asInt();
      else
        B.D[0] = V.asReal();
      return;
    }
    const auto *AR = cast<mf::ArrayRef>(Target);
    Buffer &B = bufferFor(AR->array(), F);
    size_t Idx = linearIndex(AR, F);
    if (!Monitors.empty())
      noteWrite(AR->array(), Idx);
    // Serial-context writes bump the buffer's version (inspector-cache
    // key). Workers skip the bump — shared-buffer writes from inside a
    // parallel loop would race on the counter; execDo bumps the loop's
    // whole write set once after the join instead.
    if (!F.InParallel)
      ++B.Version;
    if (B.Kind == ScalarKind::Int)
      B.I[Idx] = V.asInt();
    else
      B.D[Idx] = V.asReal();
  }

  void setScalar(const Symbol *S, int64_t V, Frame &F) {
    if (!Monitors.empty())
      noteWrite(S, 0);
    Buffer &B = bufferFor(S, F);
    if (!F.InParallel)
      ++B.Version;
    if (B.Kind == ScalarKind::Int)
      B.I[0] = V;
    else
      B.D[0] = static_cast<double>(V);
  }

  //===--------------------------------------------------------------------===//
  // Shadow-memory race checking (ExecOptions::RaceCheck)
  //===--------------------------------------------------------------------===//

  /// Per-element iteration tags for one plan-marked loop executing under
  /// the race checker. Accesses discharged by the plan's proof obligations
  /// (the loop index, private scalars, reduction scalars) are ignored;
  /// privatized arrays are only checked for the premises privatization
  /// rests on (no exposed reads; live-out last value written by the final
  /// iteration); everything else gets full last-writer/last-reader
  /// conflict detection.
  struct ShadowMonitor {
    static constexpr int64_t NoIter = INT64_MIN;

    std::string Label;
    int64_t CurIter = 0;
    int64_t FinalIter = 0;
    std::set<unsigned> IgnoredScalars;
    std::set<unsigned> PrivateIds;
    struct Tags {
      std::vector<int64_t> Writer;
      /// Two most recent distinct reader iterations per element — enough to
      /// catch a foreign read even when the current iteration also reads.
      std::vector<std::array<int64_t, 2>> Readers;
    };
    std::unordered_map<unsigned, Tags> Shadow;
  };

  ShadowMonitor::Tags &shadowTags(ShadowMonitor &M, const Symbol *S) {
    auto [It, Inserted] = M.Shadow.try_emplace(S->id());
    if (Inserted) {
      size_t N = Mem.buffer(S).size();
      It->second.Writer.assign(N, ShadowMonitor::NoIter);
      It->second.Readers.assign(
          N, {ShadowMonitor::NoIter, ShadowMonitor::NoIter});
    }
    return It->second;
  }

  void recordRace(const ShadowMonitor &M, const Symbol *S, size_t Idx,
                  int64_t IterA, int64_t IterB, RaceKind K) {
    if (!Stats)
      return;
    ++Stats->RacesFound;
    if (Stats->Races.size() < 64)
      Stats->Races.push_back({M.Label, S->name(), Idx, IterA, IterB, K});
  }

  void noteRead(const Symbol *S, size_t Idx) {
    for (ShadowMonitor *M : Monitors) {
      if (!S->isArray() && M->IgnoredScalars.count(S->id()))
        continue;
      ShadowMonitor::Tags &T = shadowTags(*M, S);
      int64_t W = T.Writer[Idx];
      if (S->isArray() && M->PrivateIds.count(S->id())) {
        // An element written by an *earlier* iteration and read now without
        // a same-iteration write: under privatization the value depends on
        // which worker ran the earlier iteration. A never-written element
        // is benign — every worker's copy-in holds the pre-loop value.
        if (W != ShadowMonitor::NoIter && W != M->CurIter)
          recordRace(*M, S, Idx, W, M->CurIter,
                     RaceKind::ExposedPrivateRead);
        continue;
      }
      if (W != ShadowMonitor::NoIter && W != M->CurIter)
        recordRace(*M, S, Idx, W, M->CurIter, RaceKind::ReadAfterWrite);
      auto &R = T.Readers[Idx];
      if (R[0] != M->CurIter && R[1] != M->CurIter) {
        R[1] = R[0];
        R[0] = M->CurIter;
      }
    }
  }

  void noteWrite(const Symbol *S, size_t Idx) {
    for (ShadowMonitor *M : Monitors) {
      if (!S->isArray() && M->IgnoredScalars.count(S->id()))
        continue;
      ShadowMonitor::Tags &T = shadowTags(*M, S);
      if (S->isArray() && M->PrivateIds.count(S->id())) {
        T.Writer[Idx] = M->CurIter; // Tracked for the last-value check only.
        continue;
      }
      int64_t W = T.Writer[Idx];
      if (W != ShadowMonitor::NoIter && W != M->CurIter)
        recordRace(*M, S, Idx, W, M->CurIter, RaceKind::WriteWrite);
      auto &R = T.Readers[Idx];
      for (int64_t Rd : R)
        if (Rd != ShadowMonitor::NoIter && Rd != M->CurIter)
          recordRace(*M, S, Idx, Rd, M->CurIter, RaceKind::WriteAfterRead);
      R = {ShadowMonitor::NoIter, ShadowMonitor::NoIter};
      T.Writer[Idx] = M->CurIter;
    }
  }

  /// Runs a plan-marked loop serially under a fresh shadow monitor. Nested
  /// plan-marked loops push their own monitors, so every certification is
  /// checked independently. Serial order makes the run bit-identical to an
  /// unplanned execution — the checker only *observes*.
  void execDoShadow(const DoStmt *DS, const xform::LoopPlan *Plan, int64_t Lo,
                    int64_t Up, Frame &F) {
    ShadowMonitor M;
    M.Label = DS->label().empty() ? "<unlabeled>" : DS->label();
    M.FinalIter = Up;
    M.IgnoredScalars.insert(DS->indexVar()->id());
    for (const Symbol *S : Plan->PrivateScalars)
      M.IgnoredScalars.insert(S->id());
    for (const Symbol *S : Plan->Reductions)
      M.IgnoredScalars.insert(S->id());
    for (const Symbol *S : Plan->PrivateArrays)
      M.PrivateIds.insert(S->id());

    Monitors.push_back(&M);
    for (int64_t I = Lo; I <= Up; ++I) {
      M.CurIter = I;
      setScalar(DS->indexVar(), I, F);
      execBody(DS->body(), F);
    }
    Monitors.pop_back();
    setScalar(DS->indexVar(), Up + 1, F);

    // Live-out privatized arrays: the writeback copies the final worker's
    // private buffer, so any element whose last write is not in the final
    // iteration would come back stale.
    for (const Symbol *S : Plan->LiveOutArrays) {
      auto It = M.Shadow.find(S->id());
      if (It == M.Shadow.end())
        continue;
      const std::vector<int64_t> &W = It->second.Writer;
      for (size_t E = 0; E < W.size(); ++E)
        if (W[E] != ShadowMonitor::NoIter && W[E] != Up)
          recordRace(M, S, E, W[E], Up, RaceKind::LastValueLoss);
    }
  }

  void execBody(const StmtList &Body, Frame &F) {
    for (const Stmt *S : Body)
      execStmt(S, F);
  }

  void execStmt(const Stmt *S, Frame &F) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      store(AS->lhs(), eval(AS->rhs(), F), F);
      return;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      if (eval(IS->condition(), F).truthy())
        execBody(IS->thenBody(), F);
      else
        execBody(IS->elseBody(), F);
      return;
    }
    case StmtKind::While: {
      const auto *WS = cast<WhileStmt>(S);
      unsigned Guard = 0;
      while (eval(WS->condition(), F).truthy()) {
        execBody(WS->body(), F);
        if (++Guard > 100000000u)
          runtimeFault("while loop exceeded the iteration guard");
      }
      return;
    }
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      if (!CS->callee())
        runtimeFault("call to unresolved procedure");
      execBody(CS->callee()->body(), F);
      return;
    }
    case StmtKind::Do:
      execDo(cast<DoStmt>(S), F);
      return;
    }
  }

  void execDo(const DoStmt *DS, Frame &F) {
    int64_t Lo = eval(DS->lower(), F).asInt();
    int64_t Up = eval(DS->upper(), F).asInt();
    int64_t Step = DS->step() ? eval(DS->step(), F).asInt() : 1;
    if (Step == 0)
      runtimeFault("do loop with zero step");

    bool Timed = !DS->label().empty() && Stats && !F.InParallel;
    Timer LoopTimer;
    double AdjustAtEntry = VirtualAdjust;

    const xform::LoopPlan *Plan = nullptr;
    if (!F.InParallel && Opts.Plans &&
        (Opts.Threads > 1 || Opts.RaceCheck) && Step == 1)
      Plan = Opts.Plans->planFor(DS);
    int64_t NIter = Step > 0 ? (Up - Lo) / Step + 1 : (Lo - Up) / (-Step) + 1;
    if (NIter < 0)
      NIter = 0;

    // Inspector/executor: a statically-serial loop carrying a
    // runtime-conditional plan is inspected before its first execution and
    // dispatched parallel only when every check passes against the actual
    // index-array contents; a failed (or structurally impossible)
    // inspection falls through to the serial path below, which is always
    // sound. Race checking deliberately skips conditional plans — they are
    // not parallel-marked, so there is no certification to validate.
    if (!Plan && !F.InParallel && Opts.RuntimeChecks && !Opts.RaceCheck &&
        Opts.Plans && Opts.Threads > 1 && Step == 1 && NIter >= 2) {
      if (const xform::LoopPlan *Cond = Opts.Plans->conditionalPlanFor(DS))
        if (satMul(NIter, bodyWeight(DS)) >= Opts.MinParallelWork &&
            inspectionPasses(DS, *Cond, Lo, Up))
          Plan = Cond;
    }

    // Race checking replaces parallel execution: the plan-marked loop runs
    // serially under shadow tags, bypassing the profitability guard so
    // every certified plan is checked regardless of size.
    if (Plan && Opts.RaceCheck && NIter >= 2) {
      execDoShadow(DS, Plan, Lo, Up, F);
      if (Timed)
        Stats->LoopSeconds[DS->label()] +=
            LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
      return;
    }

    if (!Plan || NIter < 2 ||
        satMul(NIter, bodyWeight(DS)) < Opts.MinParallelWork) {
      for (int64_t I = Lo; Step > 0 ? I <= Up : I >= Up; I += Step) {
        setScalar(DS->indexVar(), I, F);
        execBody(DS->body(), F);
      }
      setScalar(DS->indexVar(),
                NIter > 0 ? Lo + NIter * Step : Lo, F);
      if (Timed)
        Stats->LoopSeconds[DS->label()] +=
            LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
      return;
    }

    // --- Parallel execution.
    if (Stats)
      ++Stats->ParallelLoopRuns;
    ++interp_parallel_loop_runs;
    unsigned T = Opts.Threads;
    if (static_cast<int64_t>(T) > NIter)
      T = static_cast<unsigned>(NIter);

    trace::TraceScope ParSpan("parallel-loop", "interp");
    ParSpan.arg("loop", DS->label().empty() ? "<unlabeled>" : DS->label());
    ParSpan.arg("threads", std::to_string(T));
    ParSpan.arg("schedule", scheduleName(Opts.Sched));

    // Everything below is per-*worker-that-ran-iterations*: private copies
    // are built on a worker's first dispensed chunk, reduction partials are
    // merged only from workers that ran, and the last value comes from the
    // worker that executed the final iteration — an idle worker (empty
    // static chunk, or starved by the dynamic dispenser) contributes
    // nothing and can never corrupt post-loop state.
    struct WorkerState {
      std::unordered_map<unsigned, Buffer> Overrides;
      bool Ran = false;
      int64_t LastIter = 0; ///< Highest iteration executed (valid if Ran).
      unsigned Chunks = 0;
      double SecondsSum = 0;
      double SecondsMax = 0;
    };
    std::vector<WorkerState> Workers(T);

    auto BuildPrivates = [&](unsigned W) {
      auto &Map = Workers[W].Overrides;
      auto AddPrivate = [&](const Symbol *S) {
        Map.emplace(S->id(), Mem.buffer(S)); // Copy-in.
      };
      AddPrivate(DS->indexVar());
      for (const Symbol *S : Plan->PrivateScalars)
        AddPrivate(S);
      for (const Symbol *S : Plan->PrivateArrays)
        AddPrivate(S);
      for (const Symbol *S : Plan->Reductions) {
        Buffer Zero = Mem.buffer(S);
        if (Zero.Kind == ScalarKind::Int)
          Zero.I.assign(Zero.I.size(), 0);
        else
          Zero.D.assign(Zero.D.size(), 0.0);
        Map.emplace(S->id(), std::move(Zero));
      }
    };

    ChunkDispenser Disp(Lo, Up, T, Opts.Sched, Opts.ChunkSize);

    // Runs one dispensed chunk on worker W; returns its seconds (including
    // the first chunk's private-copy construction — it parallelizes too).
    // Each worker touches only its own WorkerState slot, so the threaded
    // path needs no synchronization beyond the dispenser and the join.
    auto RunChunk = [&](unsigned W, int64_t First, int64_t Last,
                        unsigned ChunkId) {
      trace::TraceScope ChunkSpan("chunk", "interp");
      Timer CT;
      WorkerState &WS = Workers[W];
      if (!WS.Ran) {
        BuildPrivates(W);
        WS.Ran = true;
      }
      Frame FW;
      FW.Overrides = &WS.Overrides;
      FW.InParallel = true;
      for (int64_t I = First; I <= Last; ++I) {
        setScalar(DS->indexVar(), I, FW);
        execBody(DS->body(), FW);
      }
      double Secs = CT.seconds();
      WS.LastIter = std::max(WS.LastIter, Last);
      ++WS.Chunks;
      WS.SecondsSum += Secs;
      WS.SecondsMax = std::max(WS.SecondsMax, Secs);
      if (ChunkSpan.active()) {
        ChunkSpan.arg("worker", std::to_string(W));
        ChunkSpan.arg("chunk", std::to_string(ChunkId));
        ChunkSpan.arg("schedule", scheduleName(Opts.Sched));
        ChunkSpan.arg("first", std::to_string(First));
        ChunkSpan.arg("last", std::to_string(Last));
      }
      return Secs;
    };

    if (Opts.Simulate) {
      // Model the same schedule the threaded path would run: greedy list
      // scheduling on per-worker virtual clocks — the next chunk goes to
      // the worker whose clock is lowest, exactly how a free thread is the
      // one that grabs from the dispenser. The loop's virtual cost is the
      // busiest worker's clock plus the fork/join overhead model.
      std::vector<double> Clock(T, 0.0);
      std::vector<bool> Done(T, false);
      while (true) {
        unsigned W = T;
        for (unsigned C = 0; C < T; ++C)
          if (!Done[C] && (W == T || Clock[C] < Clock[W]))
            W = C;
        if (W == T)
          break;
        int64_t First, Last;
        unsigned ChunkId;
        if (!Disp.next(W, First, Last, ChunkId)) {
          Done[W] = true;
          continue;
        }
        Clock[W] += RunChunk(W, First, Last, ChunkId);
      }
      double SumChunks = 0, MaxClock = 0;
      for (unsigned W = 0; W < T; ++W) {
        SumChunks += Clock[W];
        MaxClock = std::max(MaxClock, Clock[W]);
      }
      double Overhead = Opts.ForkAlpha + Opts.ForkBeta * T;
      VirtualAdjust += SumChunks - (MaxClock + Overhead);
    } else {
      if (!Pool || Pool->maxWorkers() < T)
        Pool = std::make_unique<WorkerPool>(Opts.Threads);
      Pool->run(T, [&](unsigned W) {
        int64_t First, Last;
        unsigned ChunkId;
        while (Disp.next(W, First, Last, ChunkId))
          RunChunk(W, First, Last, ChunkId);
      });
    }

    unsigned ChunksRun = Disp.chunksDispensed();
    interp_chunks_run += ChunksRun;
    if (Stats) {
      Stats->ChunksRun += ChunksRun;
      for (const WorkerState &WS : Workers) {
        if (!WS.Ran)
          continue;
        ++Stats->WorkersEngaged;
        Stats->ChunkSecondsSum += WS.SecondsSum;
        Stats->ChunkSecondsMax = std::max(Stats->ChunkSecondsMax,
                                          WS.SecondsMax);
      }
    }

    // Merge reductions: global += sum of partials of the workers that ran.
    for (const Symbol *S : Plan->Reductions) {
      Buffer &G = Mem.buffer(S);
      for (const WorkerState &WS : Workers) {
        if (!WS.Ran)
          continue;
        const Buffer &Part = WS.Overrides.at(S->id());
        if (G.Kind == ScalarKind::Int)
          G.I[0] += Part.I[0];
        else
          G.D[0] += Part.D[0];
      }
    }

    // Last-value semantics: the worker that executed the final iteration
    // writes its private copies back. Chunks are dispensed in increasing
    // iteration order under every schedule, so exactly one worker's highest
    // iteration is Up.
    WorkerState *LastW = nullptr;
    for (WorkerState &WS : Workers)
      if (WS.Ran && WS.LastIter == Up)
        LastW = &WS;
    if (!LastW)
      runtimeFault("no worker executed the final iteration");
    for (const Symbol *S : Plan->PrivateScalars)
      Mem.buffer(S) = LastW->Overrides.at(S->id());
    for (const Symbol *S : Plan->PrivateArrays)
      Mem.buffer(S) = LastW->Overrides.at(S->id());
    setScalar(DS->indexVar(), Up + 1, F);

    // Workers skipped the per-write version bumps (they would race); bump
    // everything the loop writes once, after the join and the writebacks,
    // so inspector-cache entries keyed on these arrays are invalidated.
    if (Opts.RuntimeChecks)
      bumpWriteSetVersions(DS);

    if (Timed)
      Stats->LoopSeconds[DS->label()] +=
          LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
  }

  /// Static work estimate of one statement: assignments count 1, nested
  /// loops are assumed to run 16 iterations. Used by the profitability
  /// guard for parallel loops.
  int64_t stmtWeight(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign:
      return 1;
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      int64_t W = 1;
      for (const Stmt *Sub : CS->callee()->body())
        W += stmtWeight(Sub);
      return W;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      int64_t WT = 0, WE = 0;
      for (const Stmt *Sub : IS->thenBody())
        WT += stmtWeight(Sub);
      for (const Stmt *Sub : IS->elseBody())
        WE += stmtWeight(Sub);
      return 1 + std::max(WT, WE);
    }
    case StmtKind::Do: {
      int64_t W = 0;
      for (const Stmt *Sub : cast<DoStmt>(S)->body())
        W = satAdd(W, stmtWeight(Sub));
      return satAdd(2, satMul(16, W));
    }
    case StmtKind::While: {
      int64_t W = 0;
      for (const Stmt *Sub : cast<WhileStmt>(S)->body())
        W = satAdd(W, stmtWeight(Sub));
      return satAdd(2, satMul(16, W));
    }
    }
    return 1;
  }

  int64_t bodyWeight(const DoStmt *DS) {
    auto [It, Inserted] = BodyWeights.try_emplace(DS, 0);
    if (Inserted)
      for (const Stmt *Sub : DS->body())
        It->second = satAdd(It->second, stmtWeight(Sub));
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Runtime-check inspection (ExecOptions::RuntimeChecks)
  //===--------------------------------------------------------------------===//

  /// Bumps the version counter of every symbol the loop body writes
  /// (transitively through calls), memoizing the write set per loop.
  void bumpWriteSetVersions(const DoStmt *DS) {
    if (!UsesForVersions)
      UsesForVersions.emplace(Prog);
    auto [It, Inserted] = LoopWriteSets.try_emplace(DS);
    if (Inserted) {
      analysis::UseSet U = UsesForVersions->bodyUses(DS->body());
      It->second.assign(U.Writes.begin(), U.Writes.end());
      It->second.push_back(DS->indexVar());
    }
    for (const Symbol *S : It->second)
      ++Mem.buffer(S).Version;
  }

  void recordDecision(const DoStmt *DS, bool Cached, bool DidPass,
                      const std::string &Detail) {
    if (!Stats)
      return;
    if (Cached)
      ++Stats->InspectionsCached;
    else
      ++Stats->InspectionsRun;
    if (!DidPass)
      ++Stats->RuntimeCheckFails;
    if (Stats->RuntimeDecisions.size() < 64)
      Stats->RuntimeDecisions.push_back(
          {DS->label().empty() ? "<unlabeled>" : DS->label(), Cached, DidPass,
           Detail});
  }

  /// Decides whether the runtime-conditional \p Plan may dispatch \p DS in
  /// parallel for iterations [Lo, Up]. Verdicts are cached per loop, keyed
  /// on the bounds and the version counters of every inspected index
  /// array; any write to one of them (serial stores bump inline, parallel
  /// loops bump their write set after the join) forces a re-inspection.
  bool inspectionPasses(const DoStmt *DS, const xform::LoopPlan &Plan,
                        int64_t Lo, int64_t Up) {
    // The bounds-within check reads only the bounded array's *extent*
    // (fixed for the run), so data writes to it must not invalidate the
    // cache — only Index/Length contents participate in the key.
    std::vector<std::pair<unsigned, uint64_t>> Versions;
    for (const auto &C : Plan.RuntimeChecks)
      for (const Symbol *S : {C.Index, C.Length})
        if (S)
          Versions.emplace_back(S->id(), Mem.buffer(S).Version);
    std::sort(Versions.begin(), Versions.end());
    Versions.erase(std::unique(Versions.begin(), Versions.end()),
                   Versions.end());

    auto [It, Inserted] = InspectionCache.try_emplace(DS);
    InspectionEntry &E = It->second;
    if (!Inserted && E.Lo == Lo && E.Up == Up && E.Versions == Versions) {
      ++interp_inspections_cached;
      recordDecision(DS, /*Cached=*/true, E.Pass, E.Detail);
      return E.Pass;
    }

    trace::TraceScope Span("inspect", "interp");
    if (Span.active())
      Span.arg("loop", DS->label().empty() ? "<unlabeled>" : DS->label());
    // The inspection scans parallelize on the same pool the loop itself
    // would use; in simulate mode they run on the calling thread.
    WorkerPool *InsPool = nullptr;
    if (!Opts.Simulate && Opts.Threads > 1) {
      if (!Pool)
        Pool = std::make_unique<WorkerPool>(Opts.Threads);
      InsPool = Pool.get();
    }
    E.Pass = true;
    E.Detail.clear();
    for (const auto &C : Plan.RuntimeChecks) {
      InspectionOutcome O =
          inspectRuntimeCheck(C, Mem, Lo, Up, InsPool, Opts.Threads);
      if (!O.Pass) {
        E.Pass = false;
        E.Detail = C.str() + ": " + O.Detail;
        break;
      }
    }
    E.Lo = Lo;
    E.Up = Up;
    E.Versions = std::move(Versions);
    ++interp_inspections_run;
    if (!E.Pass)
      ++interp_runtime_check_fails;
    if (Span.active())
      Span.arg("verdict", E.Pass ? "pass" : "fail");
    recordDecision(DS, /*Cached=*/false, E.Pass, E.Detail);
    return E.Pass;
  }

public:
  /// Seconds of serialized surplus from simulated parallel loops; the
  /// virtual run time is wall time minus this.
  double VirtualAdjust = 0;

private:
  const Program &Prog;
  Memory &Mem;
  const ExecOptions &Opts;
  ExecStats *Stats;
  std::vector<std::vector<int64_t>> DimExtents;
  std::map<const DoStmt *, int64_t> BodyWeights;

  /// Cached inspection verdict for one runtime-conditional loop, valid
  /// while the bounds and every inspected array's version are unchanged.
  struct InspectionEntry {
    bool Pass = false;
    int64_t Lo = 0, Up = 0;
    std::vector<std::pair<unsigned, uint64_t>> Versions;
    std::string Detail;
  };
  std::map<const DoStmt *, InspectionEntry> InspectionCache;
  /// Memoized per-loop write sets for post-join version bumps.
  std::map<const DoStmt *, std::vector<const Symbol *>> LoopWriteSets;
  std::optional<analysis::SymbolUses> UsesForVersions;

  /// Active shadow monitors, innermost last (non-empty only under
  /// ExecOptions::RaceCheck, inside plan-marked loops).
  std::vector<ShadowMonitor *> Monitors;
  /// Created lazily on the first threaded parallel loop; its workers park
  /// on a condition variable between loops and are joined for good when the
  /// run finishes.
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace

Memory Interpreter::run(const ExecOptions &Opts, ExecStats *Stats) {
  trace::TraceScope Span("interp-run", "interp");
  Span.arg("threads", std::to_string(Opts.Threads));
  Span.arg("mode", Opts.Simulate ? "simulate" : "threaded");
  ++interp_runs;
  Memory Mem(Prog);
  Timer Total;
  Exec E(Prog, Mem, Opts, Stats);
  E.runMain();
  if (Stats) {
    Stats->WallSeconds = Total.seconds();
    Stats->TotalSeconds = Stats->WallSeconds - E.VirtualAdjust;
  }
  return Mem;
}
