//===- interp/Interpreter.cpp - MF execution engine -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "analysis/GlobalConstants.h"
#include "analysis/SymbolUses.h"
#include "interp/Fault.h"
#include "interp/Inspector.h"
#include "interp/ThreadPool.h"
#include "prof/Profiler.h"
#include "support/Saturating.h"
#include "support/Statistic.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "vm/Compiler.h"
#include "vm/Vm.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;

#define IAA_STAT_GROUP "interp"
IAA_STAT(interp_runs, "Interpreter runs");
IAA_STAT(interp_parallel_loop_runs, "Loop invocations executed in parallel");
IAA_STAT(interp_chunks_run, "Iteration chunks executed by parallel loops");
IAA_STAT(interp_inspections_run, "Fresh runtime-check inspections executed");
IAA_STAT(interp_inspections_cached,
         "Runtime-check verdicts served from the version cache");
IAA_STAT(interp_runtime_check_fails,
         "Runtime-check decisions that fell back to serial");
IAA_STAT(interp_locality_model_picks,
         "Parallel dispatches scheduled by the locality footprint model");
IAA_STAT(interp_locality_reorders,
         "Fresh locality iteration permutations built by the inspector");
IAA_STAT(interp_locality_reorders_cached,
         "Locality permutations served from the version cache");
IAA_STAT(interp_faults_trapped, "Runtime faults trapped (all contexts)");
IAA_STAT(interp_fault_rollbacks,
         "Parallel-loop transactions rolled back after a worker fault");
IAA_STAT(interp_fault_replays, "Serial replays executed after a rollback");
IAA_STAT(interp_fault_replays_recovered,
         "Serial replays that completed cleanly (fault not reproduced)");

// Per-loop dispatch tier (--stats group "dispatch"): one increment per
// serial-context loop invocation, classified by how the dispatch decision
// fell. Deterministic for a fixed program, input, and option set.
static ::iaa::stat::Statistic dispatch_static(
    "dispatch", "dispatch_static",
    "Invocations dispatched parallel on a static proof (no inspection)");
static ::iaa::stat::Statistic dispatch_conditional(
    "dispatch", "dispatch_conditional",
    "Invocations whose dispatch was decided by the runtime-check inspector");
static ::iaa::stat::Statistic dispatch_serial(
    "dispatch", "dispatch_serial",
    "Invocations executed serially without consulting an inspector");
static ::iaa::stat::Statistic dispatch_replay(
    "dispatch", "dispatch_replay",
    "Invocations that dispatched parallel, faulted, and were serially "
    "replayed after rollback (counted here, not in their original tier)");

// Bytecode-VM engine counters (--stats group "vm").
static ::iaa::stat::Statistic vm_loops_compiled(
    "vm", "vm_loops_compiled",
    "Distinct loops lowered to register bytecode");
static ::iaa::stat::Statistic vm_bailouts(
    "vm", "vm_bailouts",
    "Distinct loops the bytecode compiler bailed on (tree-walk fallback)");
static ::iaa::stat::Statistic vm_parallel_loop_runs(
    "vm", "vm_parallel_loop_runs",
    "Parallel loop invocations executed on the bytecode VM");
static ::iaa::stat::Statistic vm_chunks_run(
    "vm", "vm_chunks_run", "Iteration chunks executed as bytecode");

const char *iaa::interp::engineName(ExecEngine E) {
  switch (E) {
  case ExecEngine::Interp:
    return "interp";
  case ExecEngine::Vm:
    return "vm";
  case ExecEngine::Both:
    return "both";
  }
  return "?";
}

bool iaa::interp::parseEngine(const std::string &Name, ExecEngine &Out) {
  if (Name == "interp")
    Out = ExecEngine::Interp;
  else if (Name == "vm")
    Out = ExecEngine::Vm;
  else if (Name == "both")
    Out = ExecEngine::Both;
  else
    return false;
  return true;
}

namespace {

/// Raises a structured fault from a context with no frame (memory
/// allocation, extent pre-computation). Loop/worker attribution is added by
/// the framed overload inside Exec.
[[noreturn]] void faultAt(FaultKind Kind, SourceLoc Loc, std::string Detail,
                          const Symbol *Sym = nullptr, bool HasValue = false,
                          int64_t Value = 0, int64_t Bound = 0) {
  RuntimeFault F;
  F.Kind = Kind;
  F.Loc = Loc;
  F.Range = SourceRange(Loc);
  if (Sym)
    F.Var = Sym->name();
  F.HasValue = HasValue;
  F.Value = Value;
  F.Bound = Bound;
  F.Detail = std::move(Detail);
  throw FaultException(std::move(F));
}

/// A dynamically typed value.
struct Value {
  bool IsInt = true;
  int64_t I = 0;
  double D = 0;

  static Value ofInt(int64_t V) { return {true, V, 0}; }
  static Value ofReal(double V) { return {false, 0, V}; }

  int64_t asInt() const { return IsInt ? I : static_cast<int64_t>(D); }
  double asReal() const { return IsInt ? static_cast<double>(I) : D; }
  bool truthy() const { return IsInt ? I != 0 : D != 0; }
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

Memory::Memory(const Program &P, size_t LimitBytes) {
  analysis::GlobalConstants Consts(P);
  Buffers.resize(P.numSymbols());

  // Resolve a (possibly symbolic) extent using whole-program constants.
  // Saturating arithmetic keeps a hostile extent expression from tripping
  // signed-overflow UB before the positivity and size checks below run.
  std::function<int64_t(const Expr *)> EvalExtent = [&](const Expr *E)
      -> int64_t {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return cast<IntLit>(E)->value();
    case ExprKind::VarRef: {
      const Symbol *S = cast<VarRef>(E)->symbol();
      auto V = Consts.valueOf(S);
      if (!V)
        faultAt(FaultKind::BadExtent, E->loc(),
                "array extent is not a program constant", S);
      return *V;
    }
    case ExprKind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      int64_t L = EvalExtent(BE->lhs());
      int64_t R = EvalExtent(BE->rhs());
      switch (BE->op()) {
      case BinaryOp::Add: return satAdd(L, R);
      case BinaryOp::Sub: return satAdd(L, satMul(-1, R));
      case BinaryOp::Mul: return satMul(L, R);
      case BinaryOp::Div:
        if (!R)
          faultAt(FaultKind::DivByZero, BE->loc(),
                  "division by zero in array extent");
        return L / R;
      default:
        faultAt(FaultKind::Unsupported, BE->loc(),
                "unsupported operator in array extent");
      }
    }
    default:
      faultAt(FaultKind::Unsupported, E->loc(),
              "unsupported array extent expression");
    }
  };

  // Largest element count one buffer may hold. Far above any real program
  // in this repo, low enough that a wild extent faults instead of driving
  // the allocator into the ground.
  constexpr size_t MaxElems = size_t(1) << 31;

  // Running total against the optional per-run budget. Enforced *before*
  // each buffer's allocation, so an over-budget program raises a structured
  // ResourceExhausted fault instead of driving the process into bad_alloc
  // (or the OOM killer) — essential for the daemon, where one tenant's
  // allocation must never take down its neighbors.
  size_t TotalBytes = 0;

  for (const Symbol *S : P.symbols()) {
    Buffer &B = Buffers[S->id()];
    B.Kind = S->elementKind();
    size_t Elems = 1;
    for (unsigned D = 0; D < S->rank(); ++D) {
      int64_t Extent = EvalExtent(S->extent(D));
      if (Extent <= 0)
        faultAt(FaultKind::BadExtent, S->extent(D)->loc(),
                "array extent must be positive", S, /*HasValue=*/true,
                Extent);
      // Checked multiply: a product past SIZE_MAX must fault, not wrap to
      // an under-allocated buffer that later subscripts silently corrupt.
      size_t Next = 0;
      if (__builtin_mul_overflow(Elems, static_cast<size_t>(Extent), &Next) ||
          Next > MaxElems)
        faultAt(FaultKind::BadExtent, S->extent(D)->loc(),
                "array element count overflows the allocation limit", S,
                /*HasValue=*/true, Extent,
                static_cast<int64_t>(MaxElems));
      Elems = Next;
    }
    TotalBytes += Elems * 8; // Both element kinds are 8 bytes wide.
    if (LimitBytes && TotalBytes > LimitBytes)
      faultAt(FaultKind::ResourceExhausted,
              S->rank() ? S->extent(0)->loc() : SourceLoc{},
              "memory budget exceeded allocating program arrays", S,
              /*HasValue=*/true, static_cast<int64_t>(TotalBytes),
              static_cast<int64_t>(LimitBytes));
    if (B.Kind == ScalarKind::Int)
      B.I.assign(Elems, 0);
    else
      B.D.assign(Elems, 0.0);
  }
}

double Memory::checksum() const { return checksumExcluding({}); }

double Memory::checksumExcluding(const std::set<unsigned> &ExcludeIds) const {
  double Sum = 0;
  for (unsigned Id = 0; Id < Buffers.size(); ++Id) {
    if (ExcludeIds.count(Id))
      continue;
    const Buffer &B = Buffers[Id];
    if (B.Kind == ScalarKind::Int) {
      for (size_t I = 0; I < B.I.size(); ++I)
        Sum += static_cast<double>(B.I[I]) * static_cast<double>(I % 7 + 1);
    } else {
      for (size_t I = 0; I < B.D.size(); ++I)
        Sum += B.D[I] * static_cast<double>(I % 7 + 1);
    }
  }
  return Sum;
}

std::set<unsigned> interp::deadPrivateIds(const xform::PipelineResult &Plans) {
  std::set<unsigned> Ids;
  for (const auto &[Loop, Plan] : Plans.Plans) {
    // Runtime-conditional plans privatize the same arrays when their
    // inspection passes; after a serial fallback the contents are the
    // (well-defined) serial values, but excluding them keeps the digest
    // comparable whichever way the dispatch went.
    if (!Plan.Parallel &&
        !(Plan.RuntimeConditional && !Plan.RuntimeChecks.empty()))
      continue;
    for (const mf::Symbol *S : Plan.PrivateArrays)
      if (!Plan.LiveOutArrays.count(S))
        Ids.insert(S->id());
  }
  return Ids;
}

//===----------------------------------------------------------------------===//
// Race records
//===----------------------------------------------------------------------===//

const char *interp::raceKindName(RaceKind K) {
  switch (K) {
  case RaceKind::WriteWrite:         return "write-write";
  case RaceKind::ReadAfterWrite:     return "read-after-write";
  case RaceKind::WriteAfterRead:     return "write-after-read";
  case RaceKind::ExposedPrivateRead: return "exposed-private-read";
  case RaceKind::LastValueLoss:      return "last-value-loss";
  }
  return "?";
}

std::string RaceRecord::str() const {
  return Loop + ": " + raceKindName(Kind) + " on " + Var + "[" +
         std::to_string(Element) + "] between iterations " +
         std::to_string(IterA) + " and " + std::to_string(IterB);
}

std::string ExecStats::RuntimeDecision::str() const {
  std::string S = Loop + ": ";
  S += Pass ? "inspection passed, parallel dispatch"
            : "runtime check failed, serial fallback";
  if (Cached)
    S += " (cached verdict)";
  if (!Pass && !Detail.empty())
    S += " [" + Detail + "]";
  return S;
}

//===----------------------------------------------------------------------===//
// RuntimeCaches
//===----------------------------------------------------------------------===//

namespace iaa {
namespace interp {

/// Session-lifetime execution state: every per-loop memo that is sound
/// beyond a single run() — plus the lazily built worker pool — owned by the
/// Interpreter and borrowed by each run's Exec. Reusing these across runs is
/// what makes a daemon session cheap: the second request for a cached
/// program pays no re-inspection, no re-lowering, no thread spawns.
///
/// Soundness across runs: every run starts from a fresh Memory whose
/// version counters evolve deterministically for a fixed program and option
/// set, so version-keyed entries (inspection verdicts, locality
/// permutations) hit exactly when the inspected data is bit-identical to
/// the run that populated them. The purely structural memos (body weights,
/// write sets, bytecode, model picks) depend only on the AST.
class RuntimeCaches {
public:
  /// Static body-weight estimates for the profitability guard.
  std::map<const mf::DoStmt *, int64_t> BodyWeights;

  /// Cached inspection verdict for one runtime-conditional loop, valid
  /// while the bounds and every inspected array's version are unchanged.
  struct InspectionEntry {
    bool Pass = false;
    int64_t Lo = 0, Up = 0;
    std::vector<std::pair<unsigned, uint64_t>> Versions;
    std::string Detail;
  };
  std::map<const mf::DoStmt *, InspectionEntry> InspectionCache;

  /// Memoized footprint-model pick for one loop.
  struct ModelEntry {
    int64_t NIter = -1;
    unsigned Threads = 0;
    sched::SchedulePick Pick;
  };
  std::map<const mf::DoStmt *, ModelEntry> ModelCache;
  std::optional<sched::GatherFootprintModel> Model;

  /// Cached locality permutation for one conditional loop, valid while the
  /// bounds and every checked array's version are unchanged.
  struct ReorderEntry {
    int64_t Lo = 0, Up = 0;
    std::vector<std::pair<unsigned, uint64_t>> Versions;
    std::shared_ptr<const std::vector<int64_t>> Order;
    uint64_t LinesTouched = 0;
  };
  std::map<const mf::DoStmt *, ReorderEntry> ReorderCache;

  /// Memoized per-loop write sets for post-join version bumps.
  std::map<const mf::DoStmt *, std::vector<const mf::Symbol *>> LoopWriteSets;
  std::optional<analysis::SymbolUses> UsesForVersions;

  /// Compiled-bytecode store. Private by default; the daemon's artifact
  /// cache swaps in a per-program shared store (setBytecodeCache) so
  /// concurrent sessions of one cached program lower each loop once.
  std::shared_ptr<vm::BytecodeCache> Bytecode =
      std::make_shared<vm::BytecodeCache>();
  /// Loops whose compile outcome this session already counted in its stats
  /// (a shared store may hand us results some other session compiled).
  std::set<const mf::DoStmt *> VmSeen;

  /// Session-owned fork/join pool, created on the first threaded parallel
  /// loop without a usable ExecOptions::SharedPool; its workers park
  /// between loops and between runs.
  std::unique_ptr<WorkerPool> OwnPool;
};

} // namespace interp
} // namespace iaa

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

class Exec {
public:
  Exec(const Program &P, Memory &Mem, const ExecOptions &Opts,
       ExecStats *Stats, FaultState &FS, RuntimeCaches &Caches)
      : Prog(P), Mem(Mem), Opts(Opts), Stats(Stats), FS(FS), C(Caches),
        Cancel(Opts.Cancel) {
    // Pre-compute per-array dimension extents for subscript linearization.
    analysis::GlobalConstants Consts(P);
    DimExtents.resize(P.numSymbols());
    for (const Symbol *S : P.symbols()) {
      if (!S->isArray())
        continue;
      auto &Out = DimExtents[S->id()];
      for (unsigned D = 0; D < S->rank(); ++D) {
        const Expr *E = S->extent(D);
        sym::SymExpr SE = sym::SymExpr::fromAst(E);
        int64_t V = 0;
        if (SE.isConstant()) {
          V = SE.constValue();
        } else {
          // Single-symbol extents were validated by Memory already.
          bool Found = false;
          for (const Symbol *Sym2 : P.symbols()) {
            if (!Sym2->isArray() && SE.equals(sym::SymExpr::var(Sym2)))
              if (auto C = Consts.valueOf(Sym2)) {
                V = *C;
                Found = true;
                break;
              }
          }
          if (!Found) {
            // General constant-foldable extent.
            sym::RangeEnv Env;
            Consts.bindAll(Env);
            sym::ConstRange R = sym::evalConstRange(SE, Env);
            if (R.Lo && R.Hi && *R.Lo == *R.Hi)
              V = *R.Lo;
            else
              faultAt(FaultKind::BadExtent, E->loc(),
                      "array extent is not a program constant", S);
          }
        }
        Out.push_back(V);
      }
    }
  }

  struct Frame {
    std::unordered_map<unsigned, Buffer> *Overrides = nullptr;
    bool InParallel = false;
    /// Fault-attribution context: the innermost do loop being executed,
    /// its current iteration, the worker running this frame, and whether
    /// this is a serial replay of a rolled-back parallel loop.
    const DoStmt *CurLoop = nullptr;
    int64_t CurIter = 0;
    unsigned Worker = 0;
    bool InReplay = false;
    /// Profiling sample countdown: decremented per element access while a
    /// recorder is active; hits zero on the access to sample, and the
    /// recorder hands back the next (jittered) skip. Keeping it in the
    /// frame — already hot in cache — makes the per-access profiling cost
    /// a pointer test plus one decrement.
    uint32_t ProfSkip = 1;
  };

  void runMain() {
    const Procedure *Main = Prog.mainProcedure();
    if (!Main)
      faultAt(FaultKind::NoMain, SourceLoc{}, "program has no main body");
    Frame F;
    execBody(Main->body(), F);
  }

private:
  /// Raises a structured fault with full attribution from \p F: enclosing
  /// loop label, iteration, worker, parallel/replay context.
  [[noreturn]] void fault(FaultKind Kind, SourceLoc Loc, const Frame &F,
                          std::string Detail, const Symbol *Sym = nullptr,
                          bool HasValue = false, int64_t Value = 0,
                          int64_t Bound = 0) {
    RuntimeFault RF;
    RF.Kind = Kind;
    RF.Loc = Loc;
    RF.Range = SourceRange(Loc);
    if (F.CurLoop) {
      RF.Loop = F.CurLoop->label().empty() ? "<unlabeled>"
                                           : F.CurLoop->label();
      RF.HasIteration = true;
      RF.Iteration = F.CurIter;
    }
    RF.Worker = F.Worker;
    RF.InParallel = F.InParallel;
    RF.DuringReplay = F.InReplay;
    if (Sym)
      RF.Var = Sym->name();
    RF.HasValue = HasValue;
    RF.Value = Value;
    RF.Bound = Bound;
    RF.Detail = std::move(Detail);
    throw FaultException(std::move(RF));
  }

  /// RAII profiling scope for one labeled-loop invocation. Opens a
  /// recorder in the session, routes element accesses to it via ProfCur
  /// (nested unlabeled loops flow to the enclosing labeled recorder; a
  /// past-the-cap "light" invocation suspends access attribution instead
  /// of leaking into the outer loop), and finalizes on destruction — so a
  /// fault unwinding out of the loop still lands a complete record.
  /// ProfCur is only mutated here, in serial context; workers read it.
  struct ProfScope {
    Exec &E;
    Frame &F;
    prof::LoopRecorder *Rec = nullptr;
    prof::LoopRecorder *Prev = nullptr;
    uint32_t SavedSkip = 1;

    ProfScope(Exec &E, Frame &F, const DoStmt *DS, bool InParallel,
              int64_t Lo, int64_t Up, int64_t NIter)
        : E(E), F(F) {
      if (!E.Opts.Prof || InParallel || DS->label().empty())
        return;
      Rec = E.Opts.Prof->beginLoop(DS->label(), E.Prog.numSymbols(),
                                   std::max(1u, E.Opts.Threads), Lo, Up,
                                   NIter);
      Prev = E.ProfCur;
      E.ProfCur = Rec->light() ? nullptr : Rec;
      if (E.ProfCur) {
        // The recorder reseeded its sample RNGs for this invocation, so
        // the frame's countdown must restart too — a leftover skip from a
        // previous invocation would phase-shift every sample this one
        // takes, breaking run-to-run reproducibility.
        SavedSkip = F.ProfSkip;
        F.ProfSkip = 1;
      }
    }

    ~ProfScope() {
      if (!Rec)
        return;
      if (E.ProfCur == Rec)
        F.ProfSkip = SavedSkip;
      E.ProfCur = Prev;
      E.Opts.Prof->endLoop(Rec);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;
  };

  /// Saves and restores a frame's loop-attribution context so each loop
  /// exit (normal or unwinding) re-exposes the enclosing loop's identity.
  struct LoopCtxGuard {
    Frame &F;
    const DoStmt *PrevLoop;
    int64_t PrevIter;
    explicit LoopCtxGuard(Frame &F)
        : F(F), PrevLoop(F.CurLoop), PrevIter(F.CurIter) {}
    ~LoopCtxGuard() {
      F.CurLoop = PrevLoop;
      F.CurIter = PrevIter;
    }
  };

  /// Cooperative deadline poll: raises a DeadlineExceeded fault once the
  /// run's cancel token fired. Polled at iteration granularity in every
  /// execution loop (and at chunk granularity on the VM engine), so a blown
  /// deadline unwinds through the same containment machinery as any other
  /// runtime fault — workers drain, the transaction rolls back, and the
  /// caller gets a structured fault instead of a wedged thread. A no-op
  /// without a token, so untimed runs pay one null check per iteration.
  void checkCancel(SourceLoc Loc, const Frame &F) {
    if (Cancel && Cancel->cancelled())
      fault(FaultKind::DeadlineExceeded, Loc, F,
            "wall-clock deadline exceeded; run cancelled");
  }

  /// Test-only: raises the configured injected fault when the hook matches
  /// this (loop, iteration, worker, context). A no-op without an injector,
  /// so production runs pay one null check per iteration.
  void checkInjection(const DoStmt *DS, int64_t I, const Frame &F) {
    if (!Opts.Injector)
      return;
    if (auto Inj = Opts.Injector->atIteration(DS, I, F.Worker, F.InParallel))
      fault(Inj->Kind, DS->loc(), F, Inj->Detail);
  }

  /// First-fault-wins publication slot shared by the workers of one
  /// parallel loop: every trapped fault is counted, the earliest one
  /// recorded wins attribution.
  struct FaultSlot {
    std::mutex M;
    std::optional<RuntimeFault> First;
    std::atomic<unsigned> Count{0};

    void record(RuntimeFault F) {
      Count.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(M);
      if (!First)
        First = std::move(F);
    }
  };

  /// Appends one FaultReplay remark (capped at 64) recording a rolled-back
  /// parallel loop: the trapped fault and how the rollback resolved.
  void addFaultRemark(const DoStmt *DS, const RuntimeFault &Trapped,
                      const char *Outcome, const RuntimeFault *ReplayFault) {
    if (!Stats || Stats->FaultRemarks.size() >= 64)
      return;
    Remark R;
    R.Loop = DS->label().empty() ? "<unlabeled>" : DS->label();
    R.K = Remark::Kind::FaultReplay;
    R.Reason = Outcome;
    R.Evidence.emplace_back("fault", Trapped.str());
    if (ReplayFault)
      R.Evidence.emplace_back("replay-fault", ReplayFault->str());
    Stats->FaultRemarks.push_back(std::move(R));
  }

  /// Returns the bytecode program for \p DS under --engine=vm, or null when
  /// the loop must stay on the tree walk. Compilation is memoized in the
  /// session's bytecode store — including bailouts, so a rejected loop pays
  /// the compile attempt only once no matter how many runs or (under a
  /// shared store) sessions execute it. The pipeline's structural pre-check
  /// (LoopPlan::VmBailout) short-circuits loops it already rejected.
  const vm::LoopProgram *vmProgramFor(const DoStmt *DS,
                                      const xform::LoopPlan *Plan) {
    if (Opts.Engine != ExecEngine::Vm)
      return nullptr;
    const vm::CompileResult &R = C.Bytecode->getOrCompile(DS, [&] {
      vm::CompileResult New;
      if (Plan && !Plan->VmEligible && !Plan->VmBailout.empty())
        New.Bailout = Plan->VmBailout;
      else
        New = vm::compileLoop(DS, DimExtents);
      return New;
    });
    // Count the outcome once per *session*, not once per store insert: with
    // a shared store the compile may have happened in another session, but
    // each session still reports every distinct loop it ran on the VM.
    if (C.VmSeen.insert(DS).second) {
      if (R.Ok) {
        ++vm_loops_compiled;
        if (Stats)
          ++Stats->VmLoopsCompiled;
      } else {
        ++vm_bailouts;
        if (Stats)
          ++Stats->VmBailouts;
      }
    }
    return R.Ok ? &R.Prog : nullptr;
  }

  /// The fork/join pool for a \p T-worker dispatch: the shared pool when
  /// the caller provided one large enough (the daemon passes its
  /// process-wide pool so N sessions share one set of threads), else the
  /// session-owned pool, created on first use and persisted across runs.
  WorkerPool *poolFor(unsigned T) {
    if (Opts.SharedPool && Opts.SharedPool->maxWorkers() >= T)
      return Opts.SharedPool;
    if (!C.OwnPool || C.OwnPool->maxWorkers() < T)
      C.OwnPool = std::make_unique<WorkerPool>(std::max(Opts.Threads, T));
    return C.OwnPool.get();
  }

  Buffer &bufferFor(const Symbol *S, Frame &F) {
    if (F.Overrides) {
      auto It = F.Overrides->find(S->id());
      if (It != F.Overrides->end())
        return It->second;
    }
    return Mem.buffer(S);
  }

  size_t linearIndex(const mf::ArrayRef *AR, Frame &F) {
    const Symbol *S = AR->array();
    const auto &Ext = DimExtents[S->id()];
    size_t Idx = 0;
    for (unsigned D = 0; D < AR->rank(); ++D) {
      int64_t Sub = eval(AR->subscript(D), F).asInt();
      if (Sub < 1 || Sub > Ext[D])
        fault(FaultKind::OutOfBounds, AR->loc(), F,
              AR->rank() > 1 ? "array subscript out of bounds (dimension " +
                                   std::to_string(D + 1) + ")"
                             : "array subscript out of bounds",
              S, /*HasValue=*/true, Sub, Ext[D]);
      Idx = Idx * static_cast<size_t>(Ext[D]) + static_cast<size_t>(Sub - 1);
    }
    return Idx;
  }

  Value eval(const Expr *E, Frame &F) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Value::ofInt(cast<IntLit>(E)->value());
    case ExprKind::RealLit:
      return Value::ofReal(cast<RealLit>(E)->value());
    case ExprKind::VarRef: {
      const Symbol *S = cast<VarRef>(E)->symbol();
      if (!Monitors.empty())
        noteRead(S, 0);
      Buffer &B = bufferFor(S, F);
      return B.Kind == ScalarKind::Int ? Value::ofInt(B.I[0])
                                       : Value::ofReal(B.D[0]);
    }
    case ExprKind::ArrayRef: {
      const auto *AR = cast<mf::ArrayRef>(E);
      Buffer &B = bufferFor(AR->array(), F);
      size_t Idx = linearIndex(AR, F);
      if (!Monitors.empty())
        noteRead(AR->array(), Idx);
      if (ProfCur && --F.ProfSkip == 0)
        F.ProfSkip = ProfCur->noteSampledAccess(AR->array(), Idx, B.size(),
                                                /*IsWrite=*/false, F.Worker);
      return B.Kind == ScalarKind::Int ? Value::ofInt(B.I[Idx])
                                       : Value::ofReal(B.D[Idx]);
    }
    case ExprKind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      Value V = eval(UE->operand(), F);
      if (UE->op() == UnaryOp::Neg)
        return V.IsInt ? Value::ofInt(-V.I) : Value::ofReal(-V.D);
      return Value::ofInt(V.truthy() ? 0 : 1);
    }
    case ExprKind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      Value L = eval(BE->lhs(), F);
      // Short-circuit logicals.
      if (BE->op() == BinaryOp::And) {
        if (!L.truthy())
          return Value::ofInt(0);
        return Value::ofInt(eval(BE->rhs(), F).truthy() ? 1 : 0);
      }
      if (BE->op() == BinaryOp::Or) {
        if (L.truthy())
          return Value::ofInt(1);
        return Value::ofInt(eval(BE->rhs(), F).truthy() ? 1 : 0);
      }
      Value R = eval(BE->rhs(), F);
      bool BothInt = L.IsInt && R.IsInt;
      switch (BE->op()) {
      case BinaryOp::Add:
        return BothInt ? Value::ofInt(L.I + R.I)
                       : Value::ofReal(L.asReal() + R.asReal());
      case BinaryOp::Sub:
        return BothInt ? Value::ofInt(L.I - R.I)
                       : Value::ofReal(L.asReal() - R.asReal());
      case BinaryOp::Mul:
        return BothInt ? Value::ofInt(L.I * R.I)
                       : Value::ofReal(L.asReal() * R.asReal());
      case BinaryOp::Div:
        if (BothInt) {
          if (R.I == 0)
            fault(FaultKind::DivByZero, BE->loc(), F,
                  "integer division by zero");
          return Value::ofInt(L.I / R.I);
        }
        return Value::ofReal(L.asReal() / R.asReal());
      case BinaryOp::Mod:
        if (BothInt) {
          if (R.I == 0)
            fault(FaultKind::DivByZero, BE->loc(), F, "mod by zero");
          return Value::ofInt(L.I % R.I);
        }
        fault(FaultKind::Unsupported, BE->loc(), F, "mod on real operands");
      case BinaryOp::Min:
        return BothInt ? Value::ofInt(std::min(L.I, R.I))
                       : Value::ofReal(std::min(L.asReal(), R.asReal()));
      case BinaryOp::Max:
        return BothInt ? Value::ofInt(std::max(L.I, R.I))
                       : Value::ofReal(std::max(L.asReal(), R.asReal()));
      case BinaryOp::Eq:
        return Value::ofInt(BothInt ? L.I == R.I : L.asReal() == R.asReal());
      case BinaryOp::Ne:
        return Value::ofInt(BothInt ? L.I != R.I : L.asReal() != R.asReal());
      case BinaryOp::Lt:
        return Value::ofInt(BothInt ? L.I < R.I : L.asReal() < R.asReal());
      case BinaryOp::Le:
        return Value::ofInt(BothInt ? L.I <= R.I : L.asReal() <= R.asReal());
      case BinaryOp::Gt:
        return Value::ofInt(BothInt ? L.I > R.I : L.asReal() > R.asReal());
      case BinaryOp::Ge:
        return Value::ofInt(BothInt ? L.I >= R.I : L.asReal() >= R.asReal());
      case BinaryOp::And:
      case BinaryOp::Or:
        break; // Handled above.
      }
      fault(FaultKind::Unsupported, BE->loc(), F,
            "unhandled binary operator");
    }
    }
    fault(FaultKind::Unsupported, E->loc(), F, "unhandled expression kind");
  }

  void store(const Expr *Target, Value V, Frame &F) {
    if (const auto *VR = dyn_cast<VarRef>(Target)) {
      if (!Monitors.empty())
        noteWrite(VR->symbol(), 0);
      Buffer &B = bufferFor(VR->symbol(), F);
      if (!F.InParallel)
        ++B.Version;
      if (B.Kind == ScalarKind::Int)
        B.I[0] = V.asInt();
      else
        B.D[0] = V.asReal();
      return;
    }
    const auto *AR = cast<mf::ArrayRef>(Target);
    Buffer &B = bufferFor(AR->array(), F);
    size_t Idx = linearIndex(AR, F);
    if (!Monitors.empty())
      noteWrite(AR->array(), Idx);
    if (ProfCur && --F.ProfSkip == 0)
      F.ProfSkip = ProfCur->noteSampledAccess(AR->array(), Idx, B.size(),
                                              /*IsWrite=*/true, F.Worker);
    // Serial-context writes bump the buffer's version (inspector-cache
    // key). Workers skip the bump — shared-buffer writes from inside a
    // parallel loop would race on the counter; execDo bumps the loop's
    // whole write set once after the join instead.
    if (!F.InParallel)
      ++B.Version;
    if (B.Kind == ScalarKind::Int)
      B.I[Idx] = V.asInt();
    else
      B.D[Idx] = V.asReal();
  }

  void setScalar(const Symbol *S, int64_t V, Frame &F) {
    if (!Monitors.empty())
      noteWrite(S, 0);
    Buffer &B = bufferFor(S, F);
    if (!F.InParallel)
      ++B.Version;
    if (B.Kind == ScalarKind::Int)
      B.I[0] = V;
    else
      B.D[0] = static_cast<double>(V);
  }

  //===--------------------------------------------------------------------===//
  // Shadow-memory race checking (ExecOptions::RaceCheck)
  //===--------------------------------------------------------------------===//

  /// Per-element iteration tags for one plan-marked loop executing under
  /// the race checker. Accesses discharged by the plan's proof obligations
  /// (the loop index, private scalars, reduction scalars) are ignored;
  /// privatized arrays are only checked for the premises privatization
  /// rests on (no exposed reads; live-out last value written by the final
  /// iteration); everything else gets full last-writer/last-reader
  /// conflict detection.
  struct ShadowMonitor {
    static constexpr int64_t NoIter = INT64_MIN;

    std::string Label;
    int64_t CurIter = 0;
    int64_t FinalIter = 0;
    std::set<unsigned> IgnoredScalars;
    std::set<unsigned> PrivateIds;
    struct Tags {
      std::vector<int64_t> Writer;
      /// Two most recent distinct reader iterations per element — enough to
      /// catch a foreign read even when the current iteration also reads.
      std::vector<std::array<int64_t, 2>> Readers;
    };
    std::unordered_map<unsigned, Tags> Shadow;
  };

  ShadowMonitor::Tags &shadowTags(ShadowMonitor &M, const Symbol *S) {
    auto [It, Inserted] = M.Shadow.try_emplace(S->id());
    if (Inserted) {
      size_t N = Mem.buffer(S).size();
      It->second.Writer.assign(N, ShadowMonitor::NoIter);
      It->second.Readers.assign(
          N, {ShadowMonitor::NoIter, ShadowMonitor::NoIter});
    }
    return It->second;
  }

  void recordRace(const ShadowMonitor &M, const Symbol *S, size_t Idx,
                  int64_t IterA, int64_t IterB, RaceKind K) {
    if (!Stats)
      return;
    ++Stats->RacesFound;
    if (Stats->Races.size() < 64)
      Stats->Races.push_back({M.Label, S->name(), Idx, IterA, IterB, K});
  }

  void noteRead(const Symbol *S, size_t Idx) {
    for (ShadowMonitor *M : Monitors) {
      if (!S->isArray() && M->IgnoredScalars.count(S->id()))
        continue;
      ShadowMonitor::Tags &T = shadowTags(*M, S);
      int64_t W = T.Writer[Idx];
      if (S->isArray() && M->PrivateIds.count(S->id())) {
        // An element written by an *earlier* iteration and read now without
        // a same-iteration write: under privatization the value depends on
        // which worker ran the earlier iteration. A never-written element
        // is benign — every worker's copy-in holds the pre-loop value.
        if (W != ShadowMonitor::NoIter && W != M->CurIter)
          recordRace(*M, S, Idx, W, M->CurIter,
                     RaceKind::ExposedPrivateRead);
        continue;
      }
      if (W != ShadowMonitor::NoIter && W != M->CurIter)
        recordRace(*M, S, Idx, W, M->CurIter, RaceKind::ReadAfterWrite);
      auto &R = T.Readers[Idx];
      if (R[0] != M->CurIter && R[1] != M->CurIter) {
        R[1] = R[0];
        R[0] = M->CurIter;
      }
    }
  }

  void noteWrite(const Symbol *S, size_t Idx) {
    for (ShadowMonitor *M : Monitors) {
      if (!S->isArray() && M->IgnoredScalars.count(S->id()))
        continue;
      ShadowMonitor::Tags &T = shadowTags(*M, S);
      if (S->isArray() && M->PrivateIds.count(S->id())) {
        T.Writer[Idx] = M->CurIter; // Tracked for the last-value check only.
        continue;
      }
      int64_t W = T.Writer[Idx];
      if (W != ShadowMonitor::NoIter && W != M->CurIter)
        recordRace(*M, S, Idx, W, M->CurIter, RaceKind::WriteWrite);
      auto &R = T.Readers[Idx];
      for (int64_t Rd : R)
        if (Rd != ShadowMonitor::NoIter && Rd != M->CurIter)
          recordRace(*M, S, Idx, Rd, M->CurIter, RaceKind::WriteAfterRead);
      R = {ShadowMonitor::NoIter, ShadowMonitor::NoIter};
      T.Writer[Idx] = M->CurIter;
    }
  }

  /// Runs a plan-marked loop serially under a fresh shadow monitor. Nested
  /// plan-marked loops push their own monitors, so every certification is
  /// checked independently. Serial order makes the run bit-identical to an
  /// unplanned execution — the checker only *observes*.
  void execDoShadow(const DoStmt *DS, const xform::LoopPlan *Plan, int64_t Lo,
                    int64_t Up, Frame &F) {
    ShadowMonitor M;
    M.Label = DS->label().empty() ? "<unlabeled>" : DS->label();
    M.FinalIter = Up;
    M.IgnoredScalars.insert(DS->indexVar()->id());
    for (const Symbol *S : Plan->PrivateScalars)
      M.IgnoredScalars.insert(S->id());
    for (const Symbol *S : Plan->Reductions)
      M.IgnoredScalars.insert(S->id());
    for (const Symbol *S : Plan->PrivateArrays)
      M.PrivateIds.insert(S->id());

    LoopCtxGuard Ctx(F);
    F.CurLoop = DS;
    Monitors.push_back(&M);
    for (int64_t I = Lo; I <= Up; ++I) {
      M.CurIter = I;
      F.CurIter = I;
      setScalar(DS->indexVar(), I, F);
      execBody(DS->body(), F);
    }
    Monitors.pop_back();
    setScalar(DS->indexVar(), Up + 1, F);

    // Live-out privatized arrays: the writeback copies the final worker's
    // private buffer, so any element whose last write is not in the final
    // iteration would come back stale.
    for (const Symbol *S : Plan->LiveOutArrays) {
      auto It = M.Shadow.find(S->id());
      if (It == M.Shadow.end())
        continue;
      const std::vector<int64_t> &W = It->second.Writer;
      for (size_t E = 0; E < W.size(); ++E)
        if (W[E] != ShadowMonitor::NoIter && W[E] != Up)
          recordRace(M, S, E, W[E], Up, RaceKind::LastValueLoss);
    }
  }

  void execBody(const StmtList &Body, Frame &F) {
    for (const Stmt *S : Body)
      execStmt(S, F);
  }

  void execStmt(const Stmt *S, Frame &F) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      store(AS->lhs(), eval(AS->rhs(), F), F);
      return;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      if (eval(IS->condition(), F).truthy())
        execBody(IS->thenBody(), F);
      else
        execBody(IS->elseBody(), F);
      return;
    }
    case StmtKind::While: {
      const auto *WS = cast<WhileStmt>(S);
      unsigned Guard = 0;
      while (eval(WS->condition(), F).truthy()) {
        checkCancel(WS->loc(), F);
        execBody(WS->body(), F);
        if (++Guard > 100000000u)
          fault(FaultKind::IterationGuard, WS->loc(), F,
                "while loop exceeded the iteration guard",
                /*Sym=*/nullptr, /*HasValue=*/true, Guard, 100000000);
      }
      return;
    }
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      if (!CS->callee())
        fault(FaultKind::UnresolvedCall, CS->loc(), F,
              "call to unresolved procedure '" + CS->calleeName() + "'");
      execBody(CS->callee()->body(), F);
      return;
    }
    case StmtKind::Do:
      execDo(cast<DoStmt>(S), F);
      return;
    }
  }

  void execDo(const DoStmt *DS, Frame &F) {
    int64_t Lo = eval(DS->lower(), F).asInt();
    int64_t Up = eval(DS->upper(), F).asInt();
    int64_t Step = DS->step() ? eval(DS->step(), F).asInt() : 1;
    if (Step == 0)
      fault(FaultKind::BadStep, DS->loc(), F, "do loop with zero step",
            DS->indexVar(), /*HasValue=*/true, /*Value=*/0);

    // A serial replay is accounting-invisible for nested loops: the outer
    // invocation already owns the wall time, the dispatch tier, and the
    // profiling record (attributed as a replay), so nested loops executed
    // during the replay must not re-time, re-count, re-profile — or
    // re-fork; the replay's contract is faithful serial re-execution.
    bool Timed = !DS->label().empty() && Stats && !F.InParallel &&
                 !F.InReplay;
    Timer LoopTimer;
    double AdjustAtEntry = VirtualAdjust;

    const xform::LoopPlan *Plan = nullptr;
    if (!F.InParallel && !F.InReplay && Opts.Plans &&
        (Opts.Threads > 1 || Opts.RaceCheck) && Step == 1)
      Plan = Opts.Plans->planFor(DS);
    int64_t NIter = Step > 0 ? (Up - Lo) / Step + 1 : (Lo - Up) / (-Step) + 1;
    if (NIter < 0)
      NIter = 0;

    // Profiling scope for labeled serial-context loops: opens a recorder
    // in the session, finalized (even on unwinding) at scope exit.
    ProfScope PS(*this, F, DS, F.InParallel || F.InReplay, Lo, Up, NIter);
    prof::LoopRecorder *Rec = PS.Rec;

    // Inspector/executor: a statically-serial loop carrying a
    // runtime-conditional plan is inspected before its first execution and
    // dispatched parallel only when every check passes against the actual
    // index-array contents; a failed (or structurally impossible)
    // inspection falls through to the serial path below, which is always
    // sound. Race checking deliberately skips conditional plans — they are
    // not parallel-marked, so there is no certification to validate.
    bool CondInspected = false;
    std::string CondDetail;
    if (!Plan && !F.InParallel && Opts.RuntimeChecks && !Opts.RaceCheck &&
        Opts.Plans && Opts.Threads > 1 && Step == 1 && NIter >= 2) {
      if (const xform::LoopPlan *Cond = Opts.Plans->conditionalPlanFor(DS))
        if (satMul(NIter, bodyWeight(DS)) >= Opts.MinParallelWork) {
          Timer InspectTimer;
          CondInspected = true;
          bool Pass = inspectionPasses(DS, *Cond, Lo, Up, &CondDetail);
          if (Rec)
            Rec->InspectUs += InspectTimer.seconds() * 1e6;
          if (Pass)
            Plan = Cond;
        }
    }

    // Race checking replaces parallel execution: the plan-marked loop runs
    // serially under shadow tags, bypassing the profitability guard so
    // every certified plan is checked regardless of size.
    if (Plan && Opts.RaceCheck && NIter >= 2) {
      ++dispatch_static;
      if (Stats)
        ++Stats->DispatchStatic;
      if (Rec)
        Rec->Detail = "race-check: plan-marked loop forced serial";
      execDoShadow(DS, Plan, Lo, Up, F);
      if (Timed)
        Stats->LoopSeconds[DS->label()] +=
            LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
      return;
    }

    if (!Plan || NIter < 2 ||
        satMul(NIter, bodyWeight(DS)) < Opts.MinParallelWork) {
      if (!F.InParallel && !F.InReplay) {
        if (CondInspected) {
          ++dispatch_conditional;
          if (Stats)
            ++Stats->DispatchConditional;
        } else {
          ++dispatch_serial;
          if (Stats)
            ++Stats->DispatchSerial;
        }
      }
      if (Rec) {
        if (CondInspected) {
          // A passed inspection with a sufficient trip count dispatches in
          // parallel, so reaching here means the inspection failed.
          Rec->Kind = prof::DispatchKind::CondSerial;
          Rec->Detail = CondDetail;
        } else if (Plan) {
          Rec->Kind = prof::DispatchKind::SerialSmall;
          Rec->Detail = "below the parallel profitability threshold";
        }
      }
      LoopCtxGuard Ctx(F);
      F.CurLoop = DS;
      for (int64_t I = Lo; Step > 0 ? I <= Up : I >= Up; I += Step) {
        F.CurIter = I;
        checkCancel(DS->loc(), F);
        checkInjection(DS, I, F);
        setScalar(DS->indexVar(), I, F);
        execBody(DS->body(), F);
      }
      setScalar(DS->indexVar(),
                NIter > 0 ? Lo + NIter * Step : Lo, F);
      if (Timed)
        Stats->LoopSeconds[DS->label()] +=
            LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
      return;
    }

    // --- Parallel execution.
    // Tier accounting is deferred until the invocation's outcome is known:
    // a dispatch that faults and is serially replayed belongs to the
    // replay tier, not its original parallel tier — one tier per
    // invocation (Statistic has no decrement, so count late rather than
    // retract).
    bool DispatchCounted = false;
    auto CountDispatch = [&](bool Replayed) {
      if (DispatchCounted)
        return;
      DispatchCounted = true;
      if (Replayed) {
        ++dispatch_replay;
        if (Stats)
          ++Stats->DispatchReplay;
      } else if (CondInspected) {
        ++dispatch_conditional;
        if (Stats)
          ++Stats->DispatchConditional;
      } else {
        ++dispatch_static;
        if (Stats)
          ++Stats->DispatchStatic;
      }
    };
    if (Stats)
      ++Stats->ParallelLoopRuns;
    ++interp_parallel_loop_runs;
    unsigned T = Opts.Threads;
    if (static_cast<int64_t>(T) > NIter)
      T = static_cast<unsigned>(NIter);

    // Locality-aware scheduling: under Model/Reorder the footprint model
    // overrides the dispenser's policy, chunk size, and alignment; under
    // Reorder an inspected conditional loop additionally executes in the
    // inspector's line-bucketed iteration order. Either way the result is
    // bit-identical to the source order (the permutation pins the final
    // iteration last, preserving last-value semantics).
    Schedule Sch = Opts.Sched;
    int64_t ChunkSize = Opts.ChunkSize;
    int64_t Align = 1;
    if (Opts.Locality != sched::LocalityMode::Off) {
      const sched::SchedulePick &Pick = modelPickFor(DS, NIter, T);
      Sch = Pick.Sched;
      ChunkSize = Pick.ChunkSize;
      Align = Pick.Align;
      ++interp_locality_model_picks;
      if (Stats)
        ++Stats->LocalityModelPicks;
    }
    std::shared_ptr<const std::vector<int64_t>> Order;
    if (CondInspected && Opts.Locality == sched::LocalityMode::Reorder)
      Order = reorderPlanFor(DS, *Plan, Lo, Up);

    // Engine selection: under --engine=vm a compiled program runs the
    // chunks as register bytecode; a bailout (or interp engine) keeps the
    // tree walk. Everything around the chunk body is engine-agnostic.
    const vm::LoopProgram *VmProg = vmProgramFor(DS, Plan);
    if (VmProg) {
      ++vm_parallel_loop_runs;
      if (Stats)
        ++Stats->VmParallelLoopRuns;
    }

    if (Rec) {
      Rec->Kind = CondInspected ? prof::DispatchKind::CondParallel
                                : prof::DispatchKind::Parallel;
      Rec->Engine = VmProg ? "vm" : "interp";
      Rec->Threads = T;
      Rec->Schedule = scheduleName(Sch);
      Rec->Locality = sched::localityModeName(Opts.Locality);
    }

    trace::TraceScope ParSpan("parallel-loop", "interp");
    ParSpan.arg("loop", DS->label().empty() ? "<unlabeled>" : DS->label());
    ParSpan.arg("threads", std::to_string(T));
    ParSpan.arg("schedule", scheduleName(Sch));
    if (Order)
      ParSpan.arg("locality", "reorder");

    // Everything below is per-*worker-that-ran-iterations*: private copies
    // are built on a worker's first dispensed chunk, reduction partials are
    // merged only from workers that ran, and the last value comes from the
    // worker that executed the final iteration — an idle worker (empty
    // static chunk, or starved by the dynamic dispenser) contributes
    // nothing and can never corrupt post-loop state.
    struct WorkerState {
      std::unordered_map<unsigned, Buffer> Overrides;
      bool Ran = false;
      int64_t LastIter = 0; ///< Highest *original* iteration executed
                            ///< (valid if Ran; under a locality reorder the
                            ///< dispensed positions are permuted, so this
                            ///< tracks the mapped iterations).
      unsigned Chunks = 0;
      double SecondsSum = 0;
      double SecondsMax = 0;
      /// Profiling sample countdown, persisted across this worker's chunks
      /// so the sampling stream stays one jittered sequence per worker per
      /// invocation (a per-chunk reset would always sample each chunk's
      /// first access, biasing the stream).
      uint32_t ProfSkip = 1;
    };
    std::vector<WorkerState> Workers(T);

    auto BuildPrivates = [&](unsigned W) {
      auto &Map = Workers[W].Overrides;
      auto AddPrivate = [&](const Symbol *S) {
        Map.emplace(S->id(), Mem.buffer(S)); // Copy-in.
      };
      AddPrivate(DS->indexVar());
      for (const Symbol *S : Plan->PrivateScalars)
        AddPrivate(S);
      for (const Symbol *S : Plan->PrivateArrays)
        AddPrivate(S);
      for (const Symbol *S : Plan->Reductions) {
        Buffer Zero = Mem.buffer(S);
        if (Zero.Kind == ScalarKind::Int)
          Zero.I.assign(Zero.I.size(), 0);
        else
          Zero.D.assign(Zero.D.size(), 0.0);
        Map.emplace(S->id(), std::move(Zero));
      }
    };

    // Fault containment: under Report/Replay the dispatch is a transaction.
    // Snapshot every buffer the loop MAY write (the conservative
    // SymbolUses-derived write set — sound even when the plan under test
    // was mutated) so a trapped worker fault can roll the loop back to its
    // pre-dispatch state. Abort keeps the legacy no-snapshot semantics.
    const bool Transactional = Opts.OnFault != FaultAction::Abort;
    std::vector<std::pair<const Symbol *, Buffer>> Snapshot;
    if (Transactional)
      for (const Symbol *S : loopWriteSet(DS))
        Snapshot.emplace_back(S, Mem.buffer(S));
    FaultSlot Faults;

    ChunkDispenser Disp(Lo, Up, T, Sch, ChunkSize, Align);

    // Runs one dispensed chunk on worker W; returns its seconds (including
    // the first chunk's private-copy construction — it parallelizes too).
    // Each worker touches only its own WorkerState slot, so the threaded
    // path needs no synchronization beyond the dispenser and the join.
    auto RunChunk = [&](unsigned W, int64_t First, int64_t Last,
                        unsigned ChunkId) {
      trace::TraceScope ChunkSpan("chunk", "interp");
      // Chunk-granularity deadline poll: covers the VM engine (whose chunk
      // bodies cannot poll) and turns the dispenser drain a fired token
      // causes into a structured fault instead of a silent partial run.
      if (Cancel && Cancel->cancelled()) {
        Frame FC;
        FC.InParallel = true;
        FC.CurLoop = DS;
        FC.CurIter = First;
        FC.Worker = W;
        checkCancel(DS->loc(), FC);
      }
      double ProfStartUs = Rec ? Rec->nowUs() : 0.0;
      Timer CT;
      WorkerState &WS = Workers[W];
      int64_t MaxIter = WS.Ran ? WS.LastIter : INT64_MIN;
      if (!WS.Ran) {
        BuildPrivates(W);
        WS.Ran = true;
      }
      // Under a locality reorder the dispenser hands out *positions*; the
      // permutation maps each to the original iteration it executes. The
      // permutation pins original Up to the last position, so the worker
      // holding the final chunk runs Up temporally last — last-value
      // semantics survive (see interp::buildIterationReorder).
      if (VmProg) {
        vm::ChunkContext VC;
        VC.Mem = &Mem;
        VC.Overrides = &WS.Overrides;
        VC.Order = Order.get();
        VC.Lo = Lo;
        VC.First = First;
        VC.Last = Last;
        VC.Worker = W;
        VC.Injector = Opts.Injector;
        VC.Rec = ProfCur;
        VC.ProfSkip = &WS.ProfSkip;
        MaxIter = std::max(MaxIter, vm::runChunk(*VmProg, VC));
      } else {
        Frame FW;
        FW.Overrides = &WS.Overrides;
        FW.InParallel = true;
        FW.CurLoop = DS;
        FW.Worker = W;
        FW.ProfSkip = WS.ProfSkip;
        for (int64_t Pos = First; Pos <= Last; ++Pos) {
          int64_t I = Order ? (*Order)[size_t(Pos - Lo)] : Pos;
          FW.CurIter = I;
          checkCancel(DS->loc(), FW);
          checkInjection(DS, I, FW);
          setScalar(DS->indexVar(), I, FW);
          execBody(DS->body(), FW);
          MaxIter = std::max(MaxIter, I);
        }
        WS.ProfSkip = FW.ProfSkip;
      }
      double Secs = CT.seconds();
      if (Rec)
        Rec->noteChunk(W, ChunkId, First, Last, ProfStartUs, Secs * 1e6);
      WS.LastIter = MaxIter;
      ++WS.Chunks;
      WS.SecondsSum += Secs;
      WS.SecondsMax = std::max(WS.SecondsMax, Secs);
      if (ChunkSpan.active()) {
        ChunkSpan.arg("worker", std::to_string(W));
        ChunkSpan.arg("chunk", std::to_string(ChunkId));
        ChunkSpan.arg("schedule", scheduleName(Sch));
        ChunkSpan.arg("first", std::to_string(First));
        ChunkSpan.arg("last", std::to_string(Last));
      }
      return Secs;
    };

    if (Opts.Simulate) {
      // Model the same schedule the threaded path would run: greedy list
      // scheduling on per-worker virtual clocks — the next chunk goes to
      // the worker whose clock is lowest, exactly how a free thread is the
      // one that grabs from the dispenser. The loop's virtual cost is the
      // busiest worker's clock plus the fork/join overhead model.
      std::vector<double> Clock(T, 0.0);
      std::vector<bool> Done(T, false);
      while (true) {
        unsigned W = T;
        for (unsigned C = 0; C < T; ++C)
          if (!Done[C] && (W == T || Clock[C] < Clock[W]))
            W = C;
        if (W == T)
          break;
        int64_t First, Last;
        unsigned ChunkId;
        if (!Disp.next(W, First, Last, ChunkId)) {
          Done[W] = true;
          continue;
        }
        // Simulated workers fault exactly like threaded ones: trap,
        // publish first-fault-wins, cancel the dispenser.
        try {
          Clock[W] += RunChunk(W, First, Last, ChunkId);
        } catch (FaultException &FE) {
          Faults.record(std::move(FE.Fault));
          Disp.cancel();
        }
      }
      double SumChunks = 0, MaxClock = 0;
      for (unsigned W = 0; W < T; ++W) {
        SumChunks += Clock[W];
        MaxClock = std::max(MaxClock, Clock[W]);
      }
      double Overhead = Opts.ForkAlpha + Opts.ForkBeta * T;
      VirtualAdjust += SumChunks - (MaxClock + Overhead);
    } else {
      poolFor(T)->run(T, [&](unsigned W) {
        // Nothing may escape this lambda: an exception crossing into
        // WorkerPool::workerLoop would std::terminate the process. A
        // structured fault is trapped and published first-fault-wins;
        // anything else becomes an Internal fault. Either way the
        // dispenser is cancelled so sibling workers drain at chunk
        // granularity instead of racing a dying loop.
        int64_t First, Last;
        unsigned ChunkId;
        try {
          while (Disp.next(W, First, Last, ChunkId))
            RunChunk(W, First, Last, ChunkId);
        } catch (FaultException &FE) {
          Faults.record(std::move(FE.Fault));
          Disp.cancel();
        } catch (const std::exception &Ex) {
          RuntimeFault RF;
          RF.Kind = FaultKind::Internal;
          RF.Loop = DS->label().empty() ? "<unlabeled>" : DS->label();
          RF.Worker = W;
          RF.InParallel = true;
          RF.Detail = Ex.what();
          Faults.record(std::move(RF));
          Disp.cancel();
        }
      });
    }

    unsigned ChunksRun = Disp.chunksDispensed();
    interp_chunks_run += ChunksRun;
    if (VmProg) {
      vm_chunks_run += ChunksRun;
      if (Stats)
        Stats->VmChunksRun += ChunksRun;
    }
    if (Stats) {
      Stats->ChunksRun += ChunksRun;
      for (const WorkerState &WS : Workers) {
        if (!WS.Ran)
          continue;
        ++Stats->WorkersEngaged;
        Stats->ChunkSecondsSum += WS.SecondsSum;
        Stats->ChunkSecondsMax = std::max(Stats->ChunkSecondsMax,
                                          WS.SecondsMax);
      }
    }

    // A worker faulted: the torn parallel state must not be merged.
    if (unsigned NFaults = Faults.Count.load(std::memory_order_relaxed)) {
      interp_faults_trapped += NFaults;
      FS.FaultsObserved += NFaults;
      if (Stats)
        Stats->WorkerFaults += NFaults;
      RuntimeFault First = std::move(*Faults.First);
      if (!Transactional) {
        // Abort: no snapshot exists, shared state is possibly torn.
        // Propagate and let the driver decide whether to kill the process.
        CountDispatch(false);
        throw FaultException(std::move(First));
      }

      // Roll the transaction back: restore every MAY-written buffer,
      // version counter included. The restored bytes are exactly the
      // pre-loop bytes, so inspector verdicts and locality permutations
      // cached against the snapshot version are still valid — bumping the
      // version here would spuriously re-run inspections after every
      // recovered fault.
      Timer RollbackTimer;
      for (auto &[S, Buf] : Snapshot) {
        uint64_t V = Buf.Version;
        Mem.buffer(S) = std::move(Buf);
        Mem.buffer(S).Version = V;
      }
      if (Rec)
        Rec->RollbackUs += RollbackTimer.seconds() * 1e6;
      ++FS.Rollbacks;
      ++interp_fault_rollbacks;
      if (Stats)
        ++Stats->FaultRollbacks;

      // Resource-limit faults (deadline, memory budget) are never replayed,
      // whatever the policy: serially re-running the loop cannot un-blow a
      // budget — it would just burn the daemon's wall clock a second time.
      // Rollback-and-report preserves the transactional guarantee.
      if (Opts.OnFault == FaultAction::Report ||
          faultIsResourceLimit(First.Kind)) {
        if (Rec)
          Rec->Detail = "worker fault: rolled back, reported";
        addFaultRemark(DS, First, "rolled back, reported", nullptr);
        CountDispatch(false);
        throw FaultException(std::move(First));
      }

      // Replay: serial re-execution of the rolled-back loop. It either
      // reproduces the fault with exact serial attribution, or completes
      // correctly — proving the fault an artifact of parallel execution
      // (e.g. damage done by a mis-certified plan, or an injected
      // parallel-only fault).
      ++FS.Replays;
      ++interp_fault_replays;
      if (Stats)
        ++Stats->FaultReplays;
      // One invocation, one tier: the faulted parallel attempt is subsumed
      // by the replay — counting it in its original tier too would inflate
      // the health-report dispatch totals past the invocation count.
      CountDispatch(/*Replayed=*/true);
      if (Rec)
        Rec->Kind = prof::DispatchKind::Replay;
      Frame FR = F;
      FR.InReplay = true;
      FR.CurLoop = DS;
      Timer ReplayTimer;
      try {
        for (int64_t I = Lo; I <= Up; ++I) {
          FR.CurIter = I;
          checkCancel(DS->loc(), FR);
          checkInjection(DS, I, FR);
          setScalar(DS->indexVar(), I, FR);
          execBody(DS->body(), FR);
        }
      } catch (FaultException &FE) {
        if (Rec) {
          Rec->ReplayUs += ReplayTimer.seconds() * 1e6;
          Rec->Detail = "worker fault: replay reproduced the fault";
        }
        addFaultRemark(DS, First, "replay reproduced the fault", &FE.Fault);
        throw;
      }
      setScalar(DS->indexVar(), Up + 1, FR);
      if (Rec) {
        Rec->ReplayUs += ReplayTimer.seconds() * 1e6;
        Rec->Detail = "worker fault: replay recovered";
      }
      ++FS.ReplaysRecovered;
      ++interp_fault_replays_recovered;
      addFaultRemark(DS, First, "replay recovered", nullptr);
      if (Timed)
        Stats->LoopSeconds[DS->label()] +=
            LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
      return;
    }

    CountDispatch(false);

    // Merge reductions: global += sum of partials of the workers that ran.
    for (const Symbol *S : Plan->Reductions) {
      Buffer &G = Mem.buffer(S);
      for (const WorkerState &WS : Workers) {
        if (!WS.Ran)
          continue;
        const Buffer &Part = WS.Overrides.at(S->id());
        if (G.Kind == ScalarKind::Int)
          G.I[0] += Part.I[0];
        else
          G.D[0] += Part.D[0];
      }
    }

    // Last-value semantics: the worker that executed the final iteration
    // writes its private copies back. Chunks are dispensed in increasing
    // iteration order under every schedule, so exactly one worker's highest
    // iteration is Up.
    WorkerState *LastW = nullptr;
    for (WorkerState &WS : Workers)
      if (WS.Ran && WS.LastIter == Up)
        LastW = &WS;
    if (!LastW)
      fault(FaultKind::Internal, DS->loc(), F,
            "no worker executed the final iteration");
    for (const Symbol *S : Plan->PrivateScalars)
      Mem.buffer(S) = LastW->Overrides.at(S->id());
    for (const Symbol *S : Plan->PrivateArrays)
      Mem.buffer(S) = LastW->Overrides.at(S->id());
    setScalar(DS->indexVar(), Up + 1, F);

    // Workers skipped the per-write version bumps (they would race); bump
    // everything the loop writes once, after the join and the writebacks,
    // so inspector-cache entries keyed on these arrays are invalidated.
    if (Opts.RuntimeChecks)
      bumpWriteSetVersions(DS);

    if (Timed)
      Stats->LoopSeconds[DS->label()] +=
          LoopTimer.seconds() - (VirtualAdjust - AdjustAtEntry);
  }

  /// Static work estimate of one statement: assignments count 1, nested
  /// loops are assumed to run 16 iterations. Used by the profitability
  /// guard for parallel loops.
  int64_t stmtWeight(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign:
      return 1;
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      int64_t W = 1;
      for (const Stmt *Sub : CS->callee()->body())
        W += stmtWeight(Sub);
      return W;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      int64_t WT = 0, WE = 0;
      for (const Stmt *Sub : IS->thenBody())
        WT += stmtWeight(Sub);
      for (const Stmt *Sub : IS->elseBody())
        WE += stmtWeight(Sub);
      return 1 + std::max(WT, WE);
    }
    case StmtKind::Do: {
      int64_t W = 0;
      for (const Stmt *Sub : cast<DoStmt>(S)->body())
        W = satAdd(W, stmtWeight(Sub));
      return satAdd(2, satMul(16, W));
    }
    case StmtKind::While: {
      int64_t W = 0;
      for (const Stmt *Sub : cast<WhileStmt>(S)->body())
        W = satAdd(W, stmtWeight(Sub));
      return satAdd(2, satMul(16, W));
    }
    }
    return 1;
  }

  int64_t bodyWeight(const DoStmt *DS) {
    auto [It, Inserted] = C.BodyWeights.try_emplace(DS, 0);
    if (Inserted)
      for (const Stmt *Sub : DS->body())
        It->second = satAdd(It->second, stmtWeight(Sub));
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Runtime-check inspection (ExecOptions::RuntimeChecks)
  //===--------------------------------------------------------------------===//

  /// The symbols the loop body MAY write (transitively through calls) plus
  /// the index variable, memoized per loop. This conservative set backs
  /// both the post-join version bumps and the transactional snapshot of
  /// the fault-containment path.
  const std::vector<const Symbol *> &loopWriteSet(const DoStmt *DS) {
    if (!C.UsesForVersions)
      C.UsesForVersions.emplace(Prog);
    auto [It, Inserted] = C.LoopWriteSets.try_emplace(DS);
    if (Inserted) {
      analysis::UseSet U = C.UsesForVersions->bodyUses(DS->body());
      It->second.assign(U.Writes.begin(), U.Writes.end());
      It->second.push_back(DS->indexVar());
    }
    return It->second;
  }

  /// Bumps the version counter of every symbol in the loop's write set.
  void bumpWriteSetVersions(const DoStmt *DS) {
    for (const Symbol *S : loopWriteSet(DS))
      ++Mem.buffer(S).Version;
  }

  void recordDecision(const DoStmt *DS, bool Cached, bool DidPass,
                      const std::string &Detail) {
    if (!Stats)
      return;
    if (Cached)
      ++Stats->InspectionsCached;
    else
      ++Stats->InspectionsRun;
    if (!DidPass)
      ++Stats->RuntimeCheckFails;
    if (Stats->RuntimeDecisions.size() < 64)
      Stats->RuntimeDecisions.push_back(
          {DS->label().empty() ? "<unlabeled>" : DS->label(), Cached, DidPass,
           Detail});
  }

  /// Decides whether the runtime-conditional \p Plan may dispatch \p DS in
  /// parallel for iterations [Lo, Up]. Verdicts are cached per loop, keyed
  /// on the bounds and the version counters of every inspected index
  /// array; any write to one of them (serial stores bump inline, parallel
  /// loops bump their write set after the join) forces a re-inspection.
  bool inspectionPasses(const DoStmt *DS, const xform::LoopPlan &Plan,
                        int64_t Lo, int64_t Up,
                        std::string *DetailOut = nullptr) {
    // Test-only: a lying inspector vouches for the loop without scanning,
    // so containment of the resulting faults (a parallel dispatch the data
    // does not support) can be exercised end to end.
    if (Opts.Injector && Opts.Injector->skipInspection(DS)) {
      recordDecision(DS, /*Cached=*/false, /*DidPass=*/true,
                     "inspection skipped by fault injector");
      return true;
    }
    // The bounds-within check reads only the bounded array's *extent*
    // (fixed for the run), so data writes to it must not invalidate the
    // cache — only Index/Length contents participate in the key.
    std::vector<std::pair<unsigned, uint64_t>> Versions;
    for (const auto &C : Plan.RuntimeChecks)
      for (const Symbol *S : {C.Index, C.Length})
        if (S)
          Versions.emplace_back(S->id(), Mem.buffer(S).Version);
    std::sort(Versions.begin(), Versions.end());
    Versions.erase(std::unique(Versions.begin(), Versions.end()),
                   Versions.end());

    auto [It, Inserted] = C.InspectionCache.try_emplace(DS);
    RuntimeCaches::InspectionEntry &E = It->second;
    if (!Inserted && E.Lo == Lo && E.Up == Up && E.Versions == Versions) {
      ++interp_inspections_cached;
      recordDecision(DS, /*Cached=*/true, E.Pass, E.Detail);
      if (DetailOut)
        *DetailOut = E.Detail;
      return E.Pass;
    }

    trace::TraceScope Span("inspect", "interp");
    if (Span.active())
      Span.arg("loop", DS->label().empty() ? "<unlabeled>" : DS->label());
    // The inspection scans parallelize on the same pool the loop itself
    // would use; in simulate mode they run on the calling thread.
    WorkerPool *InsPool = nullptr;
    if (!Opts.Simulate && Opts.Threads > 1)
      InsPool = poolFor(Opts.Threads);
    E.Pass = true;
    E.Detail.clear();
    for (const auto &C : Plan.RuntimeChecks) {
      InspectionOutcome O =
          inspectRuntimeCheck(C, Mem, Lo, Up, InsPool, Opts.Threads);
      if (!O.Pass) {
        E.Pass = false;
        E.Detail = C.str() + ": " + O.Detail;
        break;
      }
    }
    E.Lo = Lo;
    E.Up = Up;
    E.Versions = std::move(Versions);
    ++interp_inspections_run;
    if (!E.Pass)
      ++interp_runtime_check_fails;
    if (Span.active())
      Span.arg("verdict", E.Pass ? "pass" : "fail");
    recordDecision(DS, /*Cached=*/false, E.Pass, E.Detail);
    if (DetailOut)
      *DetailOut = E.Detail;
    return E.Pass;
  }

  //===--------------------------------------------------------------------===//
  // Locality-aware scheduling (ExecOptions::Locality)
  //===--------------------------------------------------------------------===//

  /// The footprint model's schedule pick for \p DS, memoized per loop and
  /// revalidated when the trip count or worker count changes (the scored
  /// body is static, so those are the only inputs that can move the pick).
  const sched::SchedulePick &modelPickFor(const DoStmt *DS, int64_t NIter,
                                          unsigned T) {
    auto [It, Inserted] = C.ModelCache.try_emplace(DS);
    RuntimeCaches::ModelEntry &E = It->second;
    if (Inserted || E.NIter != NIter || E.Threads != T) {
      if (!C.Model)
        C.Model.emplace(Prog);
      const xform::LoopPlan *Plan = nullptr;
      if (Opts.Plans) {
        if (const xform::LoopPlan *P = Opts.Plans->planFor(DS))
          Plan = P;
        else if (const xform::LoopPlan *C = Opts.Plans->conditionalPlanFor(DS))
          Plan = C;
      }
      E.Pick = C.Model->pick(C.Model->score(DS, Plan), NIter, T);
      E.NIter = NIter;
      E.Threads = T;
    }
    return E.Pick;
  }

  /// The locality permutation for an inspected conditional loop, cached
  /// under the same keys as the inspection verdict — the bounds plus the
  /// version counters of *every* checked Index and Length array, not just
  /// the permutation's own source array. A CRS loop's segment-length array
  /// can change the target layout while the offset array it permutes by is
  /// untouched; keying on the full check set forces the rebuild. (A stale
  /// permutation would still be *safe* — any bijection of a proven
  /// iteration-disjoint space with Up pinned last is correct — but it
  /// would silently stop matching the data it was built for.)
  std::shared_ptr<const std::vector<int64_t>>
  reorderPlanFor(const DoStmt *DS, const xform::LoopPlan &Plan, int64_t Lo,
                 int64_t Up) {
    // Permute by the plan's recorded gather source when present, else the
    // first check with an index array.
    const deptest::RuntimeCheck *Check = nullptr;
    for (const auto &C : Plan.RuntimeChecks) {
      if (!C.Index)
        continue;
      if (!Check)
        Check = &C;
      if (Plan.LocalityIndexArray && C.Index == Plan.LocalityIndexArray) {
        Check = &C;
        break;
      }
    }
    if (!Check)
      return nullptr;

    std::vector<std::pair<unsigned, uint64_t>> Versions;
    for (const auto &C : Plan.RuntimeChecks)
      for (const Symbol *S : {C.Index, C.Length})
        if (S)
          Versions.emplace_back(S->id(), Mem.buffer(S).Version);
    std::sort(Versions.begin(), Versions.end());
    Versions.erase(std::unique(Versions.begin(), Versions.end()),
                   Versions.end());

    auto [It, Inserted] = C.ReorderCache.try_emplace(DS);
    RuntimeCaches::ReorderEntry &E = It->second;
    if (!Inserted && E.Lo == Lo && E.Up == Up && E.Versions == Versions) {
      ++interp_locality_reorders_cached;
      if (Stats)
        ++Stats->LocalityReordersCached;
      return E.Order;
    }

    ReorderOutcome O =
        buildIterationReorder(*Check, Mem, Lo, Up, sched::DefaultLineElems);
    E.Lo = Lo;
    E.Up = Up;
    E.Versions = std::move(Versions);
    E.Order = O.Order;
    E.LinesTouched = O.LinesTouched;
    ++interp_locality_reorders;
    if (Stats)
      ++Stats->LocalityReorders;
    return E.Order;
  }

public:
  /// Seconds of serialized surplus from simulated parallel loops; the
  /// virtual run time is wall time minus this.
  double VirtualAdjust = 0;

private:
  const Program &Prog;
  Memory &Mem;
  const ExecOptions &Opts;
  ExecStats *Stats;
  /// Per-run fault summary (owned by Interpreter); execDo accumulates
  /// trapped-fault, rollback, and replay counts here.
  FaultState &FS;
  /// Session-lifetime per-loop caches and pool (owned by Interpreter).
  RuntimeCaches &C;
  /// The run's cooperative deadline token (null when untimed).
  const CancelToken *Cancel;
  std::vector<std::vector<int64_t>> DimExtents;

  /// Active shadow monitors, innermost last (non-empty only under
  /// ExecOptions::RaceCheck, inside plan-marked loops).
  std::vector<ShadowMonitor *> Monitors;
  /// Innermost active loop recorder (null when profiling is off, inside
  /// an unprofiled region, or during a past-the-cap light invocation).
  /// Written only from serial context (ProfScope); parallel workers read
  /// it — the fork publishes it, the join synchronizes before the next
  /// mutation.
  prof::LoopRecorder *ProfCur = nullptr;
};

} // namespace

Interpreter::Interpreter(const mf::Program &P)
    : Prog(P), Caches(std::make_unique<RuntimeCaches>()) {}

Interpreter::~Interpreter() = default;

void Interpreter::setBytecodeCache(std::shared_ptr<vm::BytecodeCache> Cache) {
  Caches->Bytecode =
      Cache ? std::move(Cache) : std::make_shared<vm::BytecodeCache>();
  // Stats are counted once per session per loop; a new store means results
  // this session has not yet accounted for.
  Caches->VmSeen.clear();
}

Memory Interpreter::run(const ExecOptions &Opts, ExecStats *Stats) {
  if (Opts.Engine == ExecEngine::Both) {
    // Differential oracle: run the whole program on the reference tree walk
    // first (unprofiled — observation belongs to the engine under test),
    // then on the VM engine with the caller's stats, and demand agreement.
    ExecOptions RefOpts = Opts;
    RefOpts.Engine = ExecEngine::Interp;
    RefOpts.Prof = nullptr;
    ExecStats RefStats;
    Memory RefMem = run(RefOpts, &RefStats);
    FaultState RefFault = LastFault;

    ExecOptions VmOpts = Opts;
    VmOpts.Engine = ExecEngine::Vm;
    Memory VmMem = run(VmOpts, Stats);

    if (Stats)
      ++Stats->BothComparisons;
    std::string Why;
    if (RefFault.Faulted || LastFault.Faulted) {
      // A terminal fault leaves memory at the fault point, which legally
      // differs across engines (chunk interleavings); the contract there
      // is agreement on the fault *kind* only.
      if (RefFault.Faulted != LastFault.Faulted)
        Why = std::string("terminal fault on ") +
              (RefFault.Faulted ? "interp" : "vm") + " engine only";
      else if (RefFault.Fault.Kind != LastFault.Fault.Kind)
        Why = std::string("fault kind interp=") +
              faultKindName(RefFault.Fault.Kind) +
              " vm=" + faultKindName(LastFault.Fault.Kind);
    } else {
      std::set<unsigned> Dead =
          Opts.Plans ? deadPrivateIds(*Opts.Plans) : std::set<unsigned>{};
      double A = RefMem.checksumExcluding(Dead);
      double B = VmMem.checksumExcluding(Dead);
      if (std::memcmp(&A, &B, sizeof(double)) != 0)
        Why = "final-memory checksum interp=" + std::to_string(A) +
              " vm=" + std::to_string(B);
    }
    if (!Why.empty()) {
      if (Stats)
        ++Stats->BothMismatches;
      LastFault.Faulted = true;
      ++LastFault.FaultsObserved;
      LastFault.Fault = RuntimeFault{};
      LastFault.Fault.Kind = FaultKind::Internal;
      LastFault.Fault.Detail = "engine divergence: " + Why;
    }
    return VmMem;
  }

  trace::TraceScope Span("interp-run", "interp");
  Span.arg("threads", std::to_string(Opts.Threads));
  Span.arg("mode", Opts.Simulate ? "simulate" : "threaded");
  ++interp_runs;
  LastFault = FaultState{};
  Timer Total;
  Memory Mem;
  std::optional<Exec> E;
  // A program-level fault (bad extent during allocation, a serial fault,
  // a parallel fault the policy chose to propagate) unwinds to here —
  // never out of run(), never to std::abort. The returned memory holds the
  // state at the fault; rolled-back loops were already restored.
  try {
    Mem = Memory(Prog, Opts.MemLimitBytes);
    E.emplace(Prog, Mem, Opts, Stats, LastFault, *Caches);
    E->runMain();
  } catch (FaultException &FE) {
    ++interp_faults_trapped;
    LastFault.Faulted = true;
    ++LastFault.FaultsObserved;
    LastFault.Fault = std::move(FE.Fault);
    if (Span.active())
      Span.arg("fault", faultKindName(LastFault.Fault.Kind));
  }
  if (Stats) {
    Stats->WallSeconds = Total.seconds();
    Stats->TotalSeconds =
        Stats->WallSeconds - (E ? E->VirtualAdjust : 0.0);
  }
  return Mem;
}
