//===- interp/Fault.h - Structured runtime faults ---------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-containment vocabulary of the runtime. A program-level error
/// observed while interpreting MF code — an out-of-bounds subscript, a
/// division by zero, a bad array extent — is never a process abort: it is a
/// RuntimeFault value carrying the fault kind, the faulting source location,
/// the enclosing loop and iteration, the worker that hit it, and the
/// offending value. Serial faults unwind to the per-invocation FaultState of
/// the interpreter; faults inside parallel workers are trapped locally,
/// published first-fault-wins, and — under FaultAction::Replay — the loop's
/// shared write set is rolled back from a pre-dispatch snapshot and the loop
/// is re-executed serially, in the restoration-and-serial-re-execution mould
/// of the LRPD test's failed-check path.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_FAULT_H
#define IAA_INTERP_FAULT_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>

namespace iaa {
namespace mf {
class DoStmt;
} // namespace mf

namespace interp {

/// What went wrong. Every kind is a *program-level* fault: the interpreted
/// MF program did something undefined, not the runtime itself (Internal is
/// the one exception and flags a violated runtime invariant).
enum class FaultKind {
  OutOfBounds,    ///< Array subscript outside the declared extent.
  DivByZero,      ///< Integer division or mod by zero (incl. in extents).
  BadExtent,      ///< Non-positive, non-constant, or overflowing extent.
  BadStep,        ///< Do loop with a zero step.
  IterationGuard, ///< While loop exceeded the runaway-iteration guard.
  NoMain,         ///< Program has no main body to execute.
  UnresolvedCall, ///< Call to a procedure that was never resolved.
  Unsupported,    ///< Construct the interpreter cannot evaluate.
  Injected,       ///< Synthesized by the fault injector (tests only).
  Internal,       ///< Runtime invariant violation — a bug in the runtime.
  DeadlineExceeded,  ///< Wall-clock deadline fired; the run was cancelled
                     ///< cooperatively (dispenser drain + rollback).
  ResourceExhausted, ///< Memory budget exceeded at allocation time.
};

const char *faultKindName(FaultKind K);

/// True for fault kinds that describe an exhausted *request* (deadline,
/// memory budget) rather than misbehaving program semantics. Replaying such
/// a fault serially cannot recover it — the budget stays blown — so the
/// runtime takes the rollback-and-report path even under
/// FaultAction::Replay.
inline bool faultIsResourceLimit(FaultKind K) {
  return K == FaultKind::DeadlineExceeded || K == FaultKind::ResourceExhausted;
}

/// Cooperative cancellation flag shared between a watchdog (the daemon's
/// deadline scanner, mfpar's --deadline-ms thread) and the interpreter.
/// cancel() is sticky; the interpreter polls cancelled() at iteration and
/// chunk boundaries and raises a DeadlineExceeded fault through the normal
/// containment path (first-fault-wins publication, dispenser drain,
/// write-set rollback), so a cancelled request leaves memory in its
/// pre-loop state exactly like any other contained fault.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_release); }
  bool cancelled() const { return Flag.load(std::memory_order_acquire); }

private:
  std::atomic<bool> Flag{false};
};

/// One contained runtime fault, with enough context to act on it: where in
/// the source, in which loop and iteration, on which worker, and what value
/// violated what bound.
struct RuntimeFault {
  FaultKind Kind = FaultKind::Internal;
  /// Faulting source position (the subscript, divisor, extent, ...).
  SourceLoc Loc;
  /// Optional wider span; Loc remains the anchor.
  SourceRange Range;
  /// Label of the innermost enclosing do loop ("<unlabeled>" for an
  /// unlabeled one, empty outside any loop).
  std::string Loop;
  /// Iteration of that loop that faulted (valid when HasIteration).
  bool HasIteration = false;
  int64_t Iteration = 0;
  /// Worker that trapped the fault (0 for serial execution).
  unsigned Worker = 0;
  /// True when the fault was trapped inside a parallel chunk.
  bool InParallel = false;
  /// True when the fault was raised by the serial replay of a rolled-back
  /// parallel loop — the attribution is then exact serial semantics.
  bool DuringReplay = false;
  /// Offending symbol (subscripted array, divisor's store, ...), if any.
  std::string Var;
  /// Offending value (subscript, extent, step) when HasValue is set, and
  /// the bound it violated (array extent, guard limit) when nonzero.
  bool HasValue = false;
  int64_t Value = 0;
  int64_t Bound = 0;
  /// Human-readable specifics beyond the structured fields.
  std::string Detail;

  /// "out-of-bounds subscript 11 of x (extent 10) at 6:5 in loop 'lp'
  /// iteration 11 [worker 2]" — the full diagnostic line.
  std::string str() const;

  /// The message part of str() without the source position (which the
  /// Diagnostic carries structurally).
  std::string message() const;

  /// Renders the fault as an error diagnostic anchored at Loc.
  Diagnostic toDiagnostic() const;
};

/// Per-invocation fault summary of one Interpreter::run. A run that faulted
/// terminally has Faulted set and Fault holding the authoritative fault; a
/// run that contained and recovered every fault (serial replay completed)
/// reports the counters but leaves Faulted clear.
struct FaultState {
  /// The run ended on an unrecovered fault; Fault is authoritative.
  bool Faulted = false;
  RuntimeFault Fault;
  /// Faults trapped anywhere during the run, including losers of the
  /// first-fault-wins race and faults later recovered by replay.
  unsigned FaultsObserved = 0;
  /// Parallel-loop transactions rolled back after a worker fault.
  unsigned Rollbacks = 0;
  /// Serial replays attempted after a rollback, and how many completed
  /// cleanly (the fault was an artifact of parallel execution).
  unsigned Replays = 0;
  unsigned ReplaysRecovered = 0;

  /// One-line summary for logs and tests.
  std::string str() const;
};

/// What the runtime does when a parallel worker faults.
enum class FaultAction {
  /// Propagate the first fault immediately with no rollback: shared state
  /// may be torn, exactly like the historical abort-from-a-worker behavior
  /// (the process-level abort itself is the driver's decision; the
  /// interpreter always unwinds cleanly).
  Abort,
  /// Roll the loop's shared write set back to the pre-dispatch snapshot,
  /// then propagate the fault.
  Report,
  /// Roll back, then re-execute the loop serially: the replay either
  /// reproduces the fault with exact serial attribution or completes
  /// correctly when the fault was an artifact of parallel execution (e.g.
  /// a stale runtime-check verdict). The default.
  Replay,
};

const char *faultActionName(FaultAction A);

/// Parses "abort" / "report" / "replay"; false on anything else.
bool parseFaultAction(const std::string &Name, FaultAction &Out);

/// The unwinding vehicle for contained faults. Thrown at the fault site,
/// caught at the worker boundary (parallel context) or in Interpreter::run
/// (serial context); it never escapes the interpreter.
class FaultException final : public std::exception {
public:
  explicit FaultException(RuntimeFault F) : Fault(std::move(F)) {}

  const char *what() const noexcept override { return "iaa runtime fault"; }

  RuntimeFault Fault;
};

/// A fault to synthesize at an injection point (see FaultInjectionHook).
struct InjectedFault {
  FaultKind Kind = FaultKind::Injected;
  std::string Detail;
};

/// Test-only hook the interpreter consults when ExecOptions::Injector is
/// set: it can force a fault at a chosen (loop, iteration, worker) and lie
/// about inspections so the containment machinery can be exercised
/// deterministically. Called concurrently from workers — implementations
/// must be immutable during a run.
class FaultInjectionHook {
public:
  virtual ~FaultInjectionHook() = default;

  /// Consulted at the top of every loop iteration; a returned fault is
  /// raised at that point as if the body had faulted.
  virtual std::optional<InjectedFault>
  atIteration(const mf::DoStmt *Loop, int64_t Iteration, unsigned Worker,
              bool InParallel) const = 0;

  /// True to skip the runtime-check inspection of \p Loop and dispatch
  /// parallel unconditionally (a lying inspector / stale verdict).
  virtual bool skipInspection(const mf::DoStmt *Loop) const = 0;
};

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_FAULT_H
