//===- interp/ThreadPool.h - Fork/join helper for parallel loops -*- C++ -*-=//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork/join primitive: run N workers, wait for all. Parallel do
/// loops in the interpreter are fork/join at loop granularity — the same
/// execution model the paper's SGI Origin runs used (parallel do).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_THREADPOOL_H
#define IAA_INTERP_THREADPOOL_H

#include <functional>

namespace iaa {
namespace interp {

/// Runs \p Fn(worker) on \p Workers threads (worker 0 runs on the calling
/// thread) and joins them all.
void forkJoin(unsigned Workers, const std::function<void(unsigned)> &Fn);

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_THREADPOOL_H
