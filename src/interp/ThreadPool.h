//===- interp/ThreadPool.h - Persistent parallel-loop runtime ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling runtime behind parallel do loops: a persistent WorkerPool
/// whose threads park on a condition variable between loops (fork/join at
/// loop granularity, as on the paper's SGI Origin runs, but without paying a
/// thread spawn per invocation), and a ChunkDispenser that hands out
/// iteration chunks under the static / dynamic / guided policies of
/// `ExecOptions::Sched`.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_THREADPOOL_H
#define IAA_INTERP_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iaa {
namespace interp {

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

/// A fork/join pool whose worker threads are spawned once and sleep between
/// loops. run(T, Fn) wakes workers 1..T-1, runs Fn(0) on the calling thread,
/// and returns when every woken worker finished — the join synchronizes, so
/// results written by workers are visible to the caller without extra
/// fences. Concurrent run() calls from different threads (the mfpard daemon
/// shares one pool across requests) serialize on an internal mutex, so each
/// fork/join generation belongs to exactly one caller; parallel loops never
/// nest within a single interpreter.
///
/// Each generation propagates the calling thread's per-session context — the
/// installed stat::Collector and trace::Buffer — into the workers, so
/// counters and spans produced inside a shared pool still land in the
/// session that forked the loop.
class WorkerPool {
public:
  /// Spawns \p MaxWorkers - 1 parked threads (worker 0 is the caller).
  explicit WorkerPool(unsigned MaxWorkers);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned maxWorkers() const { return MaxWorkers; }

  /// Runs \p Fn(W) for W in [0, Workers); Workers must not exceed
  /// maxWorkers(). Worker 0 executes on the calling thread. Blocks while
  /// another thread's run() is in flight.
  void run(unsigned Workers, const std::function<void(unsigned)> &Fn);

  /// Fork/join generations completed so far (one per run() call).
  uint64_t generation() const { return Generation; }

private:
  void workerLoop(unsigned Id);

  unsigned MaxWorkers;
  std::vector<std::thread> Threads;

  /// Serializes whole run() calls across requester threads.
  std::mutex RunM;
  std::mutex M;
  std::condition_variable WakeCv; ///< Signals a new generation or shutdown.
  std::condition_variable DoneCv; ///< Signals Outstanding reached zero.
  const std::function<void(unsigned)> *Job = nullptr;
  unsigned ActiveWorkers = 0; ///< Workers participating in this generation.
  unsigned Outstanding = 0;   ///< Woken workers that have not finished.
  uint64_t Generation = 0;
  bool Shutdown = false;
};

//===----------------------------------------------------------------------===//
// Loop scheduling
//===----------------------------------------------------------------------===//

/// How a parallel loop's iteration space is divided among workers.
enum class Schedule {
  Static,  ///< Contiguous blocks dealt round-robin (one block per worker by
           ///< default); deterministic worker-to-iteration assignment.
  Dynamic, ///< Fixed-size chunks grabbed first-come-first-served from an
           ///< atomic cursor (default chunk 1).
  Guided,  ///< Like dynamic, but each grab takes remaining/Workers
           ///< iterations (never fewer than the chunk-size floor), so chunks
           ///< shrink as the loop drains.
};

const char *scheduleName(Schedule S);

/// Parses "static" / "dynamic" / "guided"; false on anything else.
bool parseSchedule(const std::string &Name, Schedule &Out);

/// Hands out chunks of the inclusive iteration space [Lo, Up] (step 1) to
/// \p Workers workers. Every iteration is dispensed exactly once; chunks are
/// dispensed in increasing iteration order, and the chunks a given worker
/// receives are increasing too — so the worker holding the chunk that
/// contains Up is the one that executed the loop's final iteration (the
/// last-value owner). next() is thread-safe; empty chunks are never handed
/// out, so chunksDispensed() counts only chunks that ran iterations.
class ChunkDispenser {
public:
  /// \p ChunkSize 0 picks the policy default: static ceil(N/Workers)
  /// (one block per worker), dynamic 1, guided a floor of 1.
  ///
  /// \p Align rounds every chunk boundary up to a multiple of \p Align
  /// iterations from \p Lo (the final chunk still clamps to Up), so the
  /// locality scheduler can keep the iterations sharing one cache line of
  /// a contiguous array on one worker. 1 (the default) dispenses exactly
  /// as before.
  ChunkDispenser(int64_t Lo, int64_t Up, unsigned Workers, Schedule Sched,
                 int64_t ChunkSize, int64_t Align = 1);

  /// Grabs worker \p W's next chunk; false when its share is exhausted or
  /// the dispenser was cancelled.
  /// \p ChunkId is the dispense-order id (0-based), used by trace spans.
  bool next(unsigned W, int64_t &First, int64_t &Last, unsigned &ChunkId);

  /// Cooperative cancellation: after cancel(), next() returns false for
  /// every worker, so a fork/join whose workers loop on next() drains at
  /// chunk granularity. Used by the fault-containment path — the worker
  /// that traps a fault cancels the dispenser so its siblings stop taking
  /// new work instead of racing a dying loop. Thread-safe; idempotent.
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  /// True once cancel() was called.
  bool cancelled() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  /// Non-empty chunks dispensed so far.
  unsigned chunksDispensed() const {
    return Dispensed.load(std::memory_order_relaxed);
  }

  int64_t chunkSize() const { return Chunk; }

private:
  int64_t Lo, Up;
  unsigned Workers;
  Schedule Sched;
  int64_t Chunk; ///< Block size (static/dynamic) or floor (guided).
  int64_t Align; ///< Chunk-boundary alignment in iterations (>= 1).
  /// Trip count; 0 for an empty space (Up < Lo). Guards next() so a
  /// zero-trip loop dispenses nothing under every policy and repeated
  /// exhausted polls never touch the cursor.
  int64_t Iterations;
  std::atomic<int64_t> Cursor;      ///< Next undispensed iteration.
  std::atomic<bool> Cancelled{false};
  std::atomic<unsigned> Dispensed{0};
  std::vector<int64_t> StaticBlock; ///< Per-worker next block index.
};

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_THREADPOOL_H
