//===- interp/Inspector.h - Runtime-check inspector -------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inspector half of the inspector/executor runtime-check subsystem:
/// O(n) scans that decide, for the actual contents of an index array, the
/// properties the static analysis left Unknown — injectivity (bitset
/// duplicate detection), monotonicity, value bounds, and offset-length
/// segment disjointness. A passing inspection licenses parallel dispatch of
/// a runtime-conditional loop plan; a failing one falls back to serial
/// execution, which is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_INSPECTOR_H
#define IAA_INTERP_INSPECTOR_H

#include "deptest/DependenceTest.h"
#include "interp/Interpreter.h"

namespace iaa {
namespace interp {

/// Verdict of inspecting one runtime check.
struct InspectionOutcome {
  bool Pass = false;
  std::string Detail; ///< Why the check failed; empty on pass.
};

/// Evaluates \p C against the current contents of \p Mem for a loop about
/// to execute iterations [Lo, Up] (step 1). The scans are O(window) and are
/// split across \p Pool's workers when the window is large enough (a null
/// pool, or Threads <= 1, scans on the calling thread). An empty window
/// passes vacuously; a window that falls outside the index array's extent
/// fails (serial execution will surface the fault exactly as written).
InspectionOutcome inspectRuntimeCheck(const deptest::RuntimeCheck &C,
                                      const Memory &Mem, int64_t Lo,
                                      int64_t Up, WorkerPool *Pool,
                                      unsigned Threads);

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_INSPECTOR_H
