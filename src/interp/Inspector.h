//===- interp/Inspector.h - Runtime-check inspector -------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inspector half of the inspector/executor runtime-check subsystem:
/// O(n) scans that decide, for the actual contents of an index array, the
/// properties the static analysis left Unknown — injectivity (bitset
/// duplicate detection), monotonicity, value bounds, and offset-length
/// segment disjointness. A passing inspection licenses parallel dispatch of
/// a runtime-conditional loop plan; a failing one falls back to serial
/// execution, which is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_INTERP_INSPECTOR_H
#define IAA_INTERP_INSPECTOR_H

#include "deptest/DependenceTest.h"
#include "interp/Interpreter.h"

#include <memory>
#include <vector>

namespace iaa {
namespace interp {

/// Verdict of inspecting one runtime check.
struct InspectionOutcome {
  bool Pass = false;
  std::string Detail; ///< Why the check failed; empty on pass.
};

/// Evaluates \p C against the current contents of \p Mem for a loop about
/// to execute iterations [Lo, Up] (step 1). The scans are O(window) and are
/// split across \p Pool's workers when the window is large enough (a null
/// pool, or Threads <= 1, scans on the calling thread). An empty window
/// passes vacuously; a window that falls outside the index array's extent
/// fails (serial execution will surface the fault exactly as written).
InspectionOutcome inspectRuntimeCheck(const deptest::RuntimeCheck &C,
                                      const Memory &Mem, int64_t Lo,
                                      int64_t Up, WorkerPool *Pool,
                                      unsigned Threads);

/// Result of the inspector's locality reorder pass (the aggregation step of
/// classic inspector/executor: group iterations whose gathered/scattered
/// targets share a cache line, so one worker touches each line).
struct ReorderOutcome {
  /// Permuted execution order: Order[k] is the original iteration to run
  /// at position Lo + k. A bijection of [Lo, Up] whose final position is
  /// always the original iteration Up — the dispenser hands the chunk
  /// containing the last position to exactly one worker, and that worker
  /// executes original Up temporally last, so the loop's last-value
  /// semantics survive the permutation. Null when the check cannot drive a
  /// reorder; callers then run in source order.
  std::shared_ptr<const std::vector<int64_t>> Order;
  /// Distinct target cache lines the index array maps [Lo, Up] onto.
  uint64_t LinesTouched = 0;
  std::string Detail; ///< Why Order is null; empty on success.
};

/// Buckets the iterations of [Lo, Up] by the cache line of the element
/// their index-array entry targets (line = floor((Index(i) + AccessLo - 1)
/// / LineElems)) and returns the line-sorted, stable (source order within a
/// line) execution order with iteration Up pinned last. Only meaningful
/// after the check's inspection passed — any bijection of a proven
/// iteration-disjoint space is semantically safe, so a stale permutation
/// can cost locality but never correctness. Returns a null Order for
/// windows that are not a 1:1 map of the iteration space, non-integer or
/// out-of-extent index arrays, or fewer than two iterations.
ReorderOutcome buildIterationReorder(const deptest::RuntimeCheck &C,
                                     const Memory &Mem, int64_t Lo,
                                     int64_t Up, unsigned LineElems);

} // namespace interp
} // namespace iaa

#endif // IAA_INTERP_INSPECTOR_H
