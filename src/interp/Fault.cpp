//===- interp/Fault.cpp - Structured runtime faults -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/Fault.h"

using namespace iaa;
using namespace iaa::interp;

const char *interp::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::OutOfBounds:    return "out-of-bounds";
  case FaultKind::DivByZero:      return "div-by-zero";
  case FaultKind::BadExtent:      return "bad-extent";
  case FaultKind::BadStep:        return "bad-step";
  case FaultKind::IterationGuard: return "iteration-guard";
  case FaultKind::NoMain:         return "no-main";
  case FaultKind::UnresolvedCall: return "unresolved-call";
  case FaultKind::Unsupported:    return "unsupported";
  case FaultKind::Injected:       return "injected";
  case FaultKind::Internal:       return "internal";
  case FaultKind::DeadlineExceeded:  return "deadline-exceeded";
  case FaultKind::ResourceExhausted: return "resource-exhausted";
  }
  return "?";
}

const char *interp::faultActionName(FaultAction A) {
  switch (A) {
  case FaultAction::Abort:  return "abort";
  case FaultAction::Report: return "report";
  case FaultAction::Replay: return "replay";
  }
  return "?";
}

bool interp::parseFaultAction(const std::string &Name, FaultAction &Out) {
  if (Name == "abort")
    Out = FaultAction::Abort;
  else if (Name == "report")
    Out = FaultAction::Report;
  else if (Name == "replay")
    Out = FaultAction::Replay;
  else
    return false;
  return true;
}

std::string RuntimeFault::message() const {
  std::string S = faultKindName(Kind);
  if (!Detail.empty())
    S += ": " + Detail;
  if (!Var.empty())
    S += " [" + Var;
  if (HasValue) {
    S += !Var.empty() ? " = " : " [value ";
    S += std::to_string(Value);
    if (Bound != 0)
      S += ", bound " + std::to_string(Bound);
  }
  if (!Var.empty() || HasValue)
    S += "]";
  if (!Loop.empty()) {
    S += " in loop '" + Loop + "'";
    if (HasIteration)
      S += " iteration " + std::to_string(Iteration);
  }
  if (InParallel)
    S += " (worker " + std::to_string(Worker) + ")";
  if (DuringReplay)
    S += " (serial replay)";
  return S;
}

std::string RuntimeFault::str() const {
  std::string S = "runtime fault: " + message();
  S += " at " + (Range.isValid() ? Range.str() : Loc.str());
  return S;
}

Diagnostic RuntimeFault::toDiagnostic() const {
  return {DiagKind::Error, Loc, "runtime fault: " + message(), Range};
}

std::string FaultState::str() const {
  std::string S;
  if (Faulted)
    S = Fault.str();
  else
    S = "no unrecovered fault";
  S += " (" + std::to_string(FaultsObserved) + " observed, " +
       std::to_string(Rollbacks) + " rolled back, " +
       std::to_string(Replays) + " replayed, " +
       std::to_string(ReplaysRecovered) + " recovered)";
  return S;
}
