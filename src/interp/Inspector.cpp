//===- interp/Inspector.cpp - Runtime-check inspector ---------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "interp/Inspector.h"

#include <algorithm>
#include <atomic>
#include <memory>

using namespace iaa;
using namespace iaa::interp;
using iaa::deptest::RuntimeCheck;
using iaa::deptest::RuntimeCheckKind;

namespace {

/// Windows below this many positions are scanned on the calling thread:
/// fork/join latency would dominate the scan.
constexpr int64_t MinParallelWindow = 1 << 13;

/// Value ranges up to this size use the bitset duplicate detector; larger
/// (or overflowing) ranges fall back to sort + adjacent comparison.
constexpr int64_t MaxBitsetRange = int64_t(1) << 24;

/// Splits [0, N) into one contiguous block per worker and runs
/// Fn(Begin, End) for each, on the pool when it pays off.
void forEachBlock(int64_t N, WorkerPool *Pool, unsigned Threads,
                  const std::function<void(int64_t, int64_t)> &Fn) {
  unsigned T = 1;
  if (Pool && Threads > 1 && N >= MinParallelWindow)
    T = std::min(Threads, Pool->maxWorkers());
  if (T <= 1) {
    if (N > 0)
      Fn(0, N);
    return;
  }
  int64_t Block = (N + T - 1) / T;
  Pool->run(T, [&](unsigned W) {
    int64_t B = int64_t(W) * Block;
    int64_t E = std::min(N, B + Block);
    if (B < E)
      Fn(B, E);
  });
}

/// Lock-free "remember the smallest failing position" accumulator, so the
/// reported counterexample is deterministic regardless of worker timing.
void noteBad(std::atomic<int64_t> &A, int64_t P) {
  int64_t Cur = A.load(std::memory_order_relaxed);
  while (P < Cur &&
         !A.compare_exchange_weak(Cur, P, std::memory_order_relaxed)) {
  }
}

constexpr int64_t NoBad = INT64_MAX;

std::string elem(const RuntimeCheck &C, int64_t Pos) {
  return C.Index->name() + "(" + std::to_string(Pos) + ")";
}

InspectionOutcome pass() { return {true, ""}; }

InspectionOutcome fail(std::string Detail) {
  return {false, std::move(Detail)};
}

} // namespace

InspectionOutcome interp::inspectRuntimeCheck(const RuntimeCheck &C,
                                              const Memory &Mem, int64_t Lo,
                                              int64_t Up, WorkerPool *Pool,
                                              unsigned Threads) {
  const Buffer &B = Mem.buffer(C.Index);
  if (B.Kind != mf::ScalarKind::Int)
    return fail(C.Index->name() + " is not an integer array");

  // Inspected window in 1-based positions of the index array.
  int64_t A = Lo + C.LoAdjust;
  int64_t Z = Up + C.UpAdjust;
  if (A > Z)
    return pass(); // Zero-trip loop: nothing to check.
  if (A < 1 || Z > int64_t(B.I.size()))
    return fail("inspection window " + C.Index->name() + "(" +
                std::to_string(A) + ":" + std::to_string(Z) +
                ") exceeds the array extent");
  const int64_t *V = B.I.data() + (A - 1); // V[k] is Index(A + k).
  int64_t N = Z - A + 1;

  switch (C.Kind) {
  case RuntimeCheckKind::BoundsWithin: {
    int64_t LoB = C.LoBound;
    int64_t UpB = C.UpBound;
    if (C.BoundedArray)
      UpB = int64_t(Mem.buffer(C.BoundedArray).size());
    std::atomic<int64_t> Bad{NoBad};
    forEachBlock(N, Pool, Threads, [&](int64_t Begin, int64_t End) {
      for (int64_t K = Begin; K < End; ++K)
        if (V[K] < LoB || V[K] > UpB) {
          noteBad(Bad, K);
          return;
        }
    });
    if (int64_t K = Bad.load(); K != NoBad)
      return fail(elem(C, A + K) + " = " + std::to_string(V[K]) +
                  " outside [" + std::to_string(LoB) + ":" +
                  std::to_string(UpB) + "]");
    return pass();
  }

  case RuntimeCheckKind::MonotonicNonDecreasing: {
    std::atomic<int64_t> Bad{NoBad};
    // Adjacent pairs (K, K+1); block boundaries overlap by one pair.
    forEachBlock(N - 1, Pool, Threads, [&](int64_t Begin, int64_t End) {
      for (int64_t K = Begin; K < End; ++K)
        if (V[K] > V[K + 1]) {
          noteBad(Bad, K);
          return;
        }
    });
    if (int64_t K = Bad.load(); K != NoBad)
      return fail(elem(C, A + K) + " = " + std::to_string(V[K]) +
                  " decreases to " + elem(C, A + K + 1) + " = " +
                  std::to_string(V[K + 1]));
    return pass();
  }

  case RuntimeCheckKind::InjectiveOnRange: {
    // Pass 1: value range (also parallel).
    std::atomic<int64_t> MinV{INT64_MAX}, MaxV{INT64_MIN};
    forEachBlock(N, Pool, Threads, [&](int64_t Begin, int64_t End) {
      int64_t Lo2 = V[Begin], Hi2 = V[Begin];
      for (int64_t K = Begin + 1; K < End; ++K) {
        Lo2 = std::min(Lo2, V[K]);
        Hi2 = std::max(Hi2, V[K]);
      }
      noteBad(MinV, Lo2);
      int64_t Cur = MaxV.load(std::memory_order_relaxed);
      while (Hi2 > Cur &&
             !MaxV.compare_exchange_weak(Cur, Hi2, std::memory_order_relaxed)) {
      }
    });
    int64_t Range = MaxV.load() - MinV.load() + 1;
    if (Range > 0 && Range <= std::max<int64_t>(MaxBitsetRange, 8 * N)) {
      // Pass 2: byte-per-value bitset; exchange marks and detects the
      // duplicate in one atomic op per element.
      std::unique_ptr<std::atomic<uint8_t>[]> Seen(
          new std::atomic<uint8_t>[size_t(Range)]());
      int64_t Base = MinV.load();
      std::atomic<int64_t> Bad{NoBad};
      forEachBlock(N, Pool, Threads, [&](int64_t Begin, int64_t End) {
        for (int64_t K = Begin; K < End; ++K)
          if (Seen[size_t(V[K] - Base)].exchange(1,
                                                 std::memory_order_relaxed)) {
            noteBad(Bad, K);
            return;
          }
      });
      if (int64_t K = Bad.load(); K != NoBad)
        return fail(elem(C, A + K) + " = " + std::to_string(V[K]) +
                    " duplicates an earlier index");
      return pass();
    }
    // Sparse values: sort a copy and look for an equal adjacent pair.
    std::vector<int64_t> Sorted(V, V + N);
    std::sort(Sorted.begin(), Sorted.end());
    auto It = std::adjacent_find(Sorted.begin(), Sorted.end());
    if (It != Sorted.end())
      return fail(C.Index->name() + " repeats the value " +
                  std::to_string(*It));
    return pass();
  }

  case RuntimeCheckKind::OffsetLengthDisjoint: {
    if (C.HasHiLen && !C.Length)
      return fail("malformed offset-length check: no length array");
    const int64_t *L = nullptr;
    if (C.Length) {
      const Buffer &LB = Mem.buffer(C.Length);
      if (LB.Kind != mf::ScalarKind::Int)
        return fail(C.Length->name() + " is not an integer array");
      if (A < 1 || Z > int64_t(LB.I.size()))
        return fail("inspection window exceeds " + C.Length->name() +
                    "'s extent");
      L = LB.I.data() + (A - 1);
    }
    std::atomic<int64_t> Bad{NoBad};
    std::atomic<int> BadWhy{0}; // 1 negative len, 2 non-monotone, 3 overlap.
    auto Note = [&](std::atomic<int64_t> &BadPos, int64_t K, int Why) {
      int64_t Cur = BadPos.load(std::memory_order_relaxed);
      if (K < Cur) {
        noteBad(BadPos, K);
        BadWhy.store(Why, std::memory_order_relaxed);
      }
    };
    forEachBlock(N, Pool, Threads, [&](int64_t Begin, int64_t End) {
      for (int64_t K = Begin; K < End; ++K) {
        if (L && C.HasHiLen && L[K] < 0) {
          Note(Bad, K, 1);
          return;
        }
        if (K + 1 >= N)
          continue; // Last iteration has no successor segment.
        int64_t NextStart = V[K + 1] + C.AccessLo;
        if (V[K] > V[K + 1]) {
          Note(Bad, K, 2);
          return;
        }
        if (C.HasHiLen && V[K] + L[K] + C.AccessHiLen >= NextStart) {
          Note(Bad, K, 3);
          return;
        }
        if (C.HasHiConst && V[K] + C.AccessHiConst >= NextStart) {
          Note(Bad, K, 3);
          return;
        }
      }
    });
    if (int64_t K = Bad.load(); K != NoBad) {
      switch (BadWhy.load()) {
      case 1:
        return fail((C.Length ? C.Length->name() : std::string("len")) + "(" +
                    std::to_string(A + K) + ") = " + std::to_string(L[K]) +
                    " is negative");
      case 2:
        return fail(elem(C, A + K) + " = " + std::to_string(V[K]) +
                    " exceeds " + elem(C, A + K + 1) + " = " +
                    std::to_string(V[K + 1]));
      default:
        return fail("segment at " + elem(C, A + K) +
                    " overlaps the next segment");
      }
    }
    return pass();
  }
  }
  return fail("unknown runtime check");
}

ReorderOutcome interp::buildIterationReorder(const RuntimeCheck &C,
                                             const Memory &Mem, int64_t Lo,
                                             int64_t Up, unsigned LineElems) {
  ReorderOutcome Out;
  if (!C.Index) {
    Out.Detail = "check has no index array";
    return Out;
  }
  const int64_t N = Up >= Lo ? Up - Lo + 1 : 0;
  if (N < 2) {
    Out.Detail = "fewer than two iterations";
    return Out;
  }
  if (C.LoAdjust != C.UpAdjust) {
    // A window shifted asymmetrically against the iteration space has no
    // one-to-one iteration -> index-entry map to permute by.
    Out.Detail = "window is not a 1:1 map of the iteration space";
    return Out;
  }
  const Buffer &B = Mem.buffer(C.Index);
  if (B.Kind != mf::ScalarKind::Int) {
    Out.Detail = C.Index->name() + " is not an integer array";
    return Out;
  }
  const int64_t A = Lo + C.LoAdjust;
  const int64_t Z = Up + C.UpAdjust;
  if (A < 1 || Z > int64_t(B.I.size())) {
    Out.Detail = "reorder window " + C.Index->name() + "(" +
                 std::to_string(A) + ":" + std::to_string(Z) +
                 ") exceeds the array extent";
    return Out;
  }
  const int64_t *V = B.I.data() + (A - 1); // V[K] is Index(A + K).
  const int64_t Elems = std::max<int64_t>(1, int64_t(LineElems));
  auto LineOf = [&](int64_t K) {
    // First element iteration Lo + K touches, floor-divided into lines
    // (1-based elements; bounds-failing values still bucket consistently).
    int64_t Elem = V[K] + C.AccessLo;
    return Elem >= 1 ? (Elem - 1) / Elems : (Elem - Elems) / Elems;
  };

  std::vector<std::pair<int64_t, int64_t>> Keyed; // (target line, iteration)
  Keyed.reserve(size_t(N - 1));
  for (int64_t K = 0; K + 1 < N; ++K)
    Keyed.emplace_back(LineOf(K), Lo + K);
  std::stable_sort(Keyed.begin(), Keyed.end(),
                   [](const std::pair<int64_t, int64_t> &X,
                      const std::pair<int64_t, int64_t> &Y) {
                     return X.first < Y.first;
                   });

  auto Order = std::make_shared<std::vector<int64_t>>();
  Order->reserve(size_t(N));
  const int64_t UpLine = LineOf(N - 1);
  bool UpLineSeen = false;
  uint64_t Lines = 0;
  int64_t PrevLine = 0;
  bool HavePrev = false;
  for (const auto &P : Keyed) {
    Order->push_back(P.second);
    if (!HavePrev || P.first != PrevLine) {
      ++Lines;
      HavePrev = true;
      PrevLine = P.first;
    }
    UpLineSeen |= P.first == UpLine;
  }
  Order->push_back(Up); // Pinned last: preserves last-value semantics.
  if (!UpLineSeen)
    ++Lines;
  Out.Order = std::move(Order);
  Out.LinesTouched = Lines;
  return Out;
}
