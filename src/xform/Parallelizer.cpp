//===- xform/Parallelizer.cpp - The Polaris-style pipeline ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "xform/Parallelizer.h"

#include "support/Statistic.h"
#include "support/Timer.h"
#include "support/TimerGroup.h"
#include "support/Trace.h"
#include "vm/Compiler.h"
#include "xform/Passes.h"

#include <optional>

using namespace iaa;
using namespace iaa::xform;
using namespace iaa::mf;

#define IAA_STAT_GROUP "pipeline"
IAA_STAT(pipeline_runs, "Pipeline invocations");
IAA_STAT(pipeline_loops_analyzed, "Loops analyzed by the pipeline");
IAA_STAT(pipeline_loops_parallel, "Loops marked parallel");
IAA_STAT(pipeline_loops_runtime_checked,
         "Loops emitted as parallel conditional on runtime checks");
IAA_STAT(pipeline_constants_propagated, "Constants propagated");
IAA_STAT(pipeline_forward_substitutions, "Forward substitutions performed");
IAA_STAT(pipeline_dead_removed, "Dead statements removed");
IAA_STAT(pipeline_inductions_substituted, "Induction variables substituted");

const char *iaa::xform::pipelineModeName(PipelineMode M) {
  switch (M) {
  case PipelineMode::Full:  return "Polaris+IAA";
  case PipelineMode::NoIAA: return "Polaris";
  case PipelineMode::Apo:   return "APO";
  }
  return "?";
}

std::string PipelineResult::str() const {
  std::string Out;
  for (const LoopReport &R : Loops) {
    Out += (R.Label.empty() ? std::string("<unlabeled>") : R.Label);
    Out += R.Parallel ? ": PARALLEL" : ": serial";
    if (!R.Parallel && !R.WhyNot.empty())
      Out += " (" + R.WhyNot + ")";
    if (R.RuntimeConditional)
      Out += " [parallel conditional on runtime checks]";
    for (const auto &D : R.DepOutcomes) {
      Out += "\n    dep " + D.Array->name() + ": " +
             (D.Independent ? "independent" : "dependent") + " [" +
             deptest::testKindName(D.Test) + "]";
      for (const std::string &Prop : D.PropertiesUsed)
        Out += " " + Prop;
    }
    for (const auto &Pv : R.PrivOutcomes) {
      Out += "\n    priv " + Pv.Array->name() + ": " +
             (Pv.Privatizable ? "private" : "exposed") + " [" + Pv.Reason +
             "]";
    }
    Out += "\n";
  }
  return Out;
}

namespace {

/// Builds the structured remark backing \p Rep's WhyNot string.
Remark remarkFor(const LoopReport &Rep, const LoopPlan &Plan) {
  Remark R;
  R.Loop = Rep.Label.empty() ? std::string("<unlabeled>") : Rep.Label;
  R.K = Rep.Parallel ? Remark::Kind::Parallelized : Remark::Kind::Missed;
  if (Rep.RuntimeConditional) {
    R.K = Remark::Kind::RuntimeCheck;
    R.Reason = "parallel conditional on " +
               std::to_string(Plan.RuntimeChecks.size()) +
               " runtime check(s); serial fallback when inspection fails";
    R.Evidence.emplace_back("static-reason", Rep.WhyNot);
    for (const auto &C : Plan.RuntimeChecks)
      R.Evidence.emplace_back("check", C.str());
  } else if (Rep.Parallel) {
    unsigned Privatized = 0;
    for (const auto &Pv : Rep.PrivOutcomes)
      if (Pv.Privatizable)
        ++Privatized;
    R.Reason = "all array references independent";
    if (Privatized)
      R.Reason += "; " + std::to_string(Privatized) + " array(s) privatized";
    if (!Rep.Reductions.empty())
      R.Reason +=
          "; " + std::to_string(Rep.Reductions.size()) + " reduction(s)";
    if (Rep.RecurrencePromoted) {
      R.K = Remark::Kind::Recurrence;
      R.Reason += "; recurrence facts proved the index-array properties "
                  "statically (" +
                  std::to_string(Plan.FallbackChecks.size()) +
                  " runtime inspection(s) deleted)";
      for (const auto &C : Plan.FallbackChecks)
        R.Evidence.emplace_back("deleted-check", C.str());
    }
  } else {
    R.Reason = Rep.WhyNot;
  }
  for (const auto &D : Rep.DepOutcomes) {
    std::string V = D.Independent ? "independent" : "dependent";
    V += std::string(" [") + deptest::testKindName(D.Test) + "]";
    for (const std::string &Prop : D.PropertiesUsed)
      V += " " + Prop;
    R.Evidence.emplace_back("dep:" + D.Array->name(), V);
  }
  for (const auto &Pv : Rep.PrivOutcomes) {
    std::string V = Pv.Privatizable ? "private" : "exposed";
    V += " [" + Pv.Reason + "]";
    if (Pv.LiveOut)
      V += " live-out";
    R.Evidence.emplace_back("priv:" + Pv.Array->name(), V);
  }
  for (const Symbol *S : Rep.Reductions)
    R.Evidence.emplace_back("reduction", S->name());
  R.Evidence.emplace_back("property-queries",
                          std::to_string(Rep.PropertyQueries));
  return R;
}

} // namespace

PipelineResult iaa::xform::parallelize(Program &P, PipelineMode Mode) {
  trace::TraceScope PipeSpan("parallelize", "pipeline");
  PipeSpan.arg("mode", pipelineModeName(Mode));
  ++pipeline_runs;

  PipelineResult Result;
  Timer Total;
  AccumulatingTimer PropTimer;
  TimerGroup Phases;

  // --- Normalization phases, ordered as Fig. 15(b).
  DiagnosticEngine Diags;
  {
    TimeRegion TR(Phases.timer("normalize"));
    trace::TraceScope Span("normalize", "pipeline");
    normalizeProgram(P, Diags);
  }
  {
    TimeRegion TR(Phases.timer("induction-subst"));
    trace::TraceScope Span("induction-subst", "pipeline");
    Result.InductionsSubstituted = substituteInductions(P);
  }
  {
    TimeRegion TR(Phases.timer("const-prop"));
    trace::TraceScope Span("const-prop", "pipeline");
    Result.ConstantsPropagated = propagateConstants(P);
  }
  {
    TimeRegion TR(Phases.timer("forward-subst"));
    trace::TraceScope Span("forward-subst", "pipeline");
    Result.ForwardSubstitutions = forwardSubstitute(P);
  }
  {
    TimeRegion TR(Phases.timer("dce"));
    trace::TraceScope Span("dce", "pipeline");
    Result.DeadRemoved = eliminateDeadCode(P);
  }
  pipeline_inductions_substituted += Result.InductionsSubstituted;
  pipeline_constants_propagated += Result.ConstantsPropagated;
  pipeline_forward_substitutions += Result.ForwardSubstitutions;
  pipeline_dead_removed += Result.DeadRemoved;

  // --- Analysis infrastructure (post-transformation AST).
  std::optional<analysis::SymbolUses> UsesOpt;
  std::optional<cfg::Hcg> GOpt;
  {
    TimeRegion TR(Phases.timer("hcg-build"));
    trace::TraceScope Span("hcg-build", "pipeline");
    UsesOpt.emplace(P);
    GOpt.emplace(P);
  }
  analysis::SymbolUses &Uses = *UsesOpt;
  cfg::Hcg &G = *GOpt;

  bool EnableIAA = Mode == PipelineMode::Full;
  bool EnableRangeTest = Mode != PipelineMode::Apo;
  bool EnableReductions = Mode != PipelineMode::Apo;
  bool EnablePrivatization = Mode != PipelineMode::Apo;

  Privatizer Priv(G, Uses, EnableIAA);
  Priv.setPropertyTimer(&PropTimer);
  deptest::DependenceTester Dep(G, Uses, EnableIAA, EnableRangeTest);
  Dep.setPropertyTimer(&PropTimer);

  // Collect every do loop (outermost first within each procedure).
  std::vector<DoStmt *> AllLoops;
  P.forEachStmt([&](Stmt *S) {
    if (auto *DS = dyn_cast<DoStmt>(S))
      AllLoops.push_back(DS);
  });

  AccumulatingTimer &LoopTimer = Phases.timer("loop-analysis");
  for (DoStmt *L : AllLoops) {
    TimeRegion TR(LoopTimer);
    trace::TraceScope LoopSpan("analyze-loop", "pipeline");
    ++pipeline_loops_analyzed;

    LoopReport Rep;
    Rep.Loop = L;
    Rep.Label = L->label();
    LoopSpan.arg("loop", Rep.Label.empty() ? "<unlabeled>" : Rep.Label);

    // The loop's conservative write footprint (LoopPlan::WriteEffects):
    // what a transactional dispatch must snapshot to be able to roll back.
    analysis::UseSet BodyUses = Uses.bodyUses(L->body());

    // 1. Dependence test without privatization to find the arrays that
    //    actually need it.
    deptest::LoopDepResult First = Dep.testLoop(L, {});
    Rep.PropertyQueries += First.PropertyQueries;

    std::set<const Symbol *> NeedPriv;
    for (const auto &O : First.Arrays)
      if (!O.Independent)
        NeedPriv.insert(O.Array);

    // 2. Privatization and scalar classification.
    PrivatizationResult Pv;
    bool PrivOk = true;
    LoopPlan Plan;
    Plan.Loop = L;
    Plan.WriteEffects.insert(BodyUses.Writes.begin(), BodyUses.Writes.end());
    Plan.WriteEffects.insert(L->indexVar());
    if (EnablePrivatization) {
      Pv = Priv.analyze(L);
      Rep.PropertyQueries += Pv.PropertyQueries;
      for (const Symbol *X : NeedPriv) {
        bool Found = false;
        for (const auto &O : Pv.Outcomes)
          if (O.Array == X) {
            Found = true;
            if (!O.Privatizable) {
              PrivOk = false;
              Rep.WhyNot = "array " + X->name() + " carries a dependence";
            } else if (O.LiveOut && !O.LastValueOk) {
              // The array is read after the loop but no single iteration's
              // private copy reproduces the serial final contents; a
              // per-iteration copy-out is not representable, so stay serial.
              PrivOk = false;
              Rep.WhyNot = "array " + X->name() +
                           " needs privatization but is live after the loop";
            } else {
              Plan.PrivateArrays.insert(X);
              if (O.LiveOut)
                Plan.LiveOutArrays.insert(X);
            }
          }
        if (!Found) {
          PrivOk = false;
          Rep.WhyNot = "array " + X->name() + " not analyzable";
        }
      }
    } else {
      PrivOk = NeedPriv.empty();
      if (!PrivOk)
        Rep.WhyNot = "dependences on " +
                     (*NeedPriv.begin())->name();
    }

    // 3. Re-run the dependence test treating the private arrays as handled,
    //    so the report reflects the final story.
    deptest::LoopDepResult Final =
        Plan.PrivateArrays.empty()
            ? std::move(First)
            : Dep.testLoop(L, Plan.PrivateArrays);
    if (!Plan.PrivateArrays.empty())
      Rep.PropertyQueries += Final.PropertyQueries;
    Rep.DepOutcomes = Final.Arrays;
    Rep.PrivOutcomes = Pv.Outcomes;

    // 4. Scalars.
    bool ScalarsOk = true;
    if (EnablePrivatization) {
      if (!EnableReductions && !Pv.Scalars.Reductions.empty())
        ScalarsOk = false;
      if (!Pv.Scalars.Carried.empty()) {
        ScalarsOk = false;
        Rep.WhyNot = "scalar " + (*Pv.Scalars.Carried.begin())->name() +
                     " carries a value between iterations";
      }
      Plan.PrivateScalars = Pv.Scalars.Private;
      Plan.Reductions = Pv.Scalars.Reductions;
      Rep.Reductions = Pv.Scalars.Reductions;
    } else {
      // APO: conservative scalar handling — every scalar written in the
      // body must be provably private; reuse the classification but reject
      // reductions.
      PrivatizationResult ApoScalars = Priv.analyze(L);
      ScalarsOk = ApoScalars.Scalars.Carried.empty() &&
                  ApoScalars.Scalars.Reductions.empty();
      if (!ScalarsOk)
        Rep.WhyNot = "scalar recurrences (no reduction support)";
      Plan.PrivateScalars = ApoScalars.Scalars.Private;
    }

    Rep.Parallel = Final.Independent && PrivOk && ScalarsOk;
    if (!Rep.Parallel && Rep.WhyNot.empty())
      Rep.WhyNot = "unresolved array dependences";
    Plan.Parallel = Rep.Parallel;
    if (Rep.Parallel)
      ++pipeline_loops_parallel;

    // A proof that rests on recurrence facts marks the plan promoted and
    // keeps the runtime checks the loop would otherwise have carried, so a
    // strict audit can demote it back to conditional dispatch instead of
    // all the way to serial.
    if (Rep.Parallel) {
      for (const auto &O : Final.Arrays) {
        if (!O.RecurrenceBacked)
          continue;
        Plan.RecurrencePromoted = true;
        for (const auto &C : O.FallbackChecks) {
          bool Dup = false;
          for (const auto &Have : Plan.FallbackChecks)
            Dup |= Have.str() == C.str();
          if (!Dup)
            Plan.FallbackChecks.push_back(C);
        }
      }
      if (Plan.RecurrencePromoted) {
        Rep.RecurrencePromoted = true;
        analysis::countRecurrencePromotion();
      }
    }

    // 5. Runtime-check fallback (inspector/executor): when scalars are fine
    //    and every remaining array dependence came back Unknown with a
    //    recorded inspectable shape, emit the plan as runtime-conditional.
    //    The interpreter inspects the index arrays before the loop's first
    //    execution and dispatches parallel only when every check passes;
    //    Parallel stays false so nothing changes unless the consumer opts
    //    into runtime checks.
    if (!Rep.Parallel && ScalarsOk) {
      bool AnyDependent = false, AllCheckable = true;
      std::vector<deptest::RuntimeCheck> Checks;
      for (const auto &O : Final.Arrays) {
        if (O.Independent)
          continue;
        AnyDependent = true;
        if (O.RuntimeCandidates.empty()) {
          AllCheckable = false;
          break;
        }
        for (const auto &C : O.RuntimeCandidates) {
          bool Dup = false;
          for (const auto &Have : Checks)
            Dup |= Have.str() == C.str();
          if (!Dup)
            Checks.push_back(C);
        }
      }
      // Arrays that failed privatization for a reason other than the
      // dependence itself (live-out without a last value, not analyzable)
      // are dependent in Final and have no candidates, so AllCheckable
      // already excludes them.
      if (AnyDependent && AllCheckable) {
        // Record the gather source for the locality scheduler: prefer an
        // injectivity check's index (the scatter target map) over segment
        // or bounds checks.
        for (const auto &C : Checks) {
          if (!C.Index)
            continue;
          if (!Plan.LocalityIndexArray)
            Plan.LocalityIndexArray = C.Index;
          if (C.Kind == deptest::RuntimeCheckKind::InjectiveOnRange) {
            Plan.LocalityIndexArray = C.Index;
            break;
          }
        }
        Plan.RuntimeChecks = std::move(Checks);
        Plan.RuntimeConditional = true;
        Rep.RuntimeConditional = true;
        ++pipeline_loops_runtime_checked;
      }
    }
    LoopSpan.arg("parallel", Rep.Parallel          ? "yes"
                 : Rep.RuntimeConditional          ? "conditional"
                                                   : "no");

    // Mark bytecode-VM eligibility for loops that can dispatch parallel
    // (statically or conditionally). Structural only — the VM compiler
    // remains authoritative at execution time and can still bail out.
    if (Plan.Parallel || Plan.RuntimeConditional) {
      if (const char *Why = vm::structuralBailout(L))
        Plan.VmBailout = Why;
      else
        Plan.VmEligible = true;
    }

    Result.Remarks.push_back(remarkFor(Rep, Plan));
    Result.Plans.emplace(L, std::move(Plan));
    Result.Loops.push_back(std::move(Rep));
  }

  Result.TotalSeconds = Total.seconds();
  Result.ErrorCount = Diags.errorCount();
  Result.PropertySeconds = PropTimer.seconds();
  Result.PhaseSeconds = Phases.seconds();
  Result.PhaseSeconds.emplace_back("property-analysis", PropTimer.seconds());
  return Result;
}
