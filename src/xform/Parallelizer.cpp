//===- xform/Parallelizer.cpp - The Polaris-style pipeline ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "xform/Parallelizer.h"

#include "support/Timer.h"
#include "xform/Passes.h"

using namespace iaa;
using namespace iaa::xform;
using namespace iaa::mf;

const char *iaa::xform::pipelineModeName(PipelineMode M) {
  switch (M) {
  case PipelineMode::Full:  return "Polaris+IAA";
  case PipelineMode::NoIAA: return "Polaris";
  case PipelineMode::Apo:   return "APO";
  }
  return "?";
}

std::string PipelineResult::str() const {
  std::string Out;
  for (const LoopReport &R : Loops) {
    Out += (R.Label.empty() ? std::string("<unlabeled>") : R.Label);
    Out += R.Parallel ? ": PARALLEL" : ": serial";
    if (!R.Parallel && !R.WhyNot.empty())
      Out += " (" + R.WhyNot + ")";
    for (const auto &D : R.DepOutcomes) {
      Out += "\n    dep " + D.Array->name() + ": " +
             (D.Independent ? "independent" : "dependent") + " [" +
             deptest::testKindName(D.Test) + "]";
      for (const std::string &Prop : D.PropertiesUsed)
        Out += " " + Prop;
    }
    for (const auto &Pv : R.PrivOutcomes) {
      Out += "\n    priv " + Pv.Array->name() + ": " +
             (Pv.Privatizable ? "private" : "exposed") + " [" + Pv.Reason +
             "]";
    }
    Out += "\n";
  }
  return Out;
}

PipelineResult iaa::xform::parallelize(Program &P, PipelineMode Mode) {
  PipelineResult Result;
  Timer Total;
  AccumulatingTimer PropTimer;

  // --- Normalization phases, ordered as Fig. 15(b).
  DiagnosticEngine Diags;
  normalizeProgram(P, Diags);
  Result.InductionsSubstituted = substituteInductions(P);
  Result.ConstantsPropagated = propagateConstants(P);
  Result.ForwardSubstitutions = forwardSubstitute(P);
  Result.DeadRemoved = eliminateDeadCode(P);

  // --- Analysis infrastructure (post-transformation AST).
  analysis::SymbolUses Uses(P);
  cfg::Hcg G(P);

  bool EnableIAA = Mode == PipelineMode::Full;
  bool EnableRangeTest = Mode != PipelineMode::Apo;
  bool EnableReductions = Mode != PipelineMode::Apo;
  bool EnablePrivatization = Mode != PipelineMode::Apo;

  Privatizer Priv(G, Uses, EnableIAA);
  Priv.setPropertyTimer(&PropTimer);
  deptest::DependenceTester Dep(G, Uses, EnableIAA, EnableRangeTest);
  Dep.setPropertyTimer(&PropTimer);

  // Collect every do loop (outermost first within each procedure).
  std::vector<DoStmt *> AllLoops;
  P.forEachStmt([&](Stmt *S) {
    if (auto *DS = dyn_cast<DoStmt>(S))
      AllLoops.push_back(DS);
  });

  for (DoStmt *L : AllLoops) {
    LoopReport Rep;
    Rep.Loop = L;
    Rep.Label = L->label();

    // 1. Dependence test without privatization to find the arrays that
    //    actually need it.
    deptest::LoopDepResult First = Dep.testLoop(L, {});
    Rep.PropertyQueries += First.PropertyQueries;

    std::set<const Symbol *> NeedPriv;
    for (const auto &O : First.Arrays)
      if (!O.Independent)
        NeedPriv.insert(O.Array);

    // 2. Privatization and scalar classification.
    PrivatizationResult Pv;
    bool PrivOk = true;
    LoopPlan Plan;
    Plan.Loop = L;
    if (EnablePrivatization) {
      Pv = Priv.analyze(L);
      Rep.PropertyQueries += Pv.PropertyQueries;
      for (const Symbol *X : NeedPriv) {
        bool Found = false;
        for (const auto &O : Pv.Outcomes)
          if (O.Array == X) {
            Found = true;
            if (!O.Privatizable) {
              PrivOk = false;
              Rep.WhyNot = "array " + X->name() + " carries a dependence";
            } else if (O.LiveOut) {
              // Copy-out of a per-iteration private section is not
              // representable; stay serial.
              PrivOk = false;
              Rep.WhyNot = "array " + X->name() +
                           " needs privatization but is live after the loop";
            } else {
              Plan.PrivateArrays.insert(X);
            }
          }
        if (!Found) {
          PrivOk = false;
          Rep.WhyNot = "array " + X->name() + " not analyzable";
        }
      }
    } else {
      PrivOk = NeedPriv.empty();
      if (!PrivOk)
        Rep.WhyNot = "dependences on " +
                     (*NeedPriv.begin())->name();
    }

    // 3. Re-run the dependence test treating the private arrays as handled,
    //    so the report reflects the final story.
    deptest::LoopDepResult Final =
        Plan.PrivateArrays.empty()
            ? std::move(First)
            : Dep.testLoop(L, Plan.PrivateArrays);
    if (!Plan.PrivateArrays.empty())
      Rep.PropertyQueries += Final.PropertyQueries;
    Rep.DepOutcomes = Final.Arrays;
    Rep.PrivOutcomes = Pv.Outcomes;

    // 4. Scalars.
    bool ScalarsOk = true;
    if (EnablePrivatization) {
      if (!EnableReductions && !Pv.Scalars.Reductions.empty())
        ScalarsOk = false;
      if (!Pv.Scalars.Carried.empty()) {
        ScalarsOk = false;
        Rep.WhyNot = "scalar " + (*Pv.Scalars.Carried.begin())->name() +
                     " carries a value between iterations";
      }
      Plan.PrivateScalars = Pv.Scalars.Private;
      Plan.Reductions = Pv.Scalars.Reductions;
      Rep.Reductions = Pv.Scalars.Reductions;
    } else {
      // APO: conservative scalar handling — every scalar written in the
      // body must be provably private; reuse the classification but reject
      // reductions.
      PrivatizationResult ApoScalars = Priv.analyze(L);
      ScalarsOk = ApoScalars.Scalars.Carried.empty() &&
                  ApoScalars.Scalars.Reductions.empty();
      if (!ScalarsOk)
        Rep.WhyNot = "scalar recurrences (no reduction support)";
      Plan.PrivateScalars = ApoScalars.Scalars.Private;
    }

    Rep.Parallel = Final.Independent && PrivOk && ScalarsOk;
    if (!Rep.Parallel && Rep.WhyNot.empty())
      Rep.WhyNot = "unresolved array dependences";
    Plan.Parallel = Rep.Parallel;

    Result.Plans.emplace(L, std::move(Plan));
    Result.Loops.push_back(std::move(Rep));
  }

  Result.TotalSeconds = Total.seconds();
  Result.PropertySeconds = PropTimer.seconds();
  return Result;
}
