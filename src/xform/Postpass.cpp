//===- xform/Postpass.cpp - Annotated parallel source emission ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "xform/Postpass.h"

#include <algorithm>

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::xform;

namespace {

/// Emits one statement list at the given indent, inserting directives in
/// front of parallel do loops.
void emitBody(const StmtList &Body, const PipelineResult &Result,
              unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  for (const Stmt *S : Body) {
    if (const auto *DS = dyn_cast<DoStmt>(S)) {
      if (const LoopPlan *Plan = Result.planFor(DS)) {
        // Deterministic clause ordering: sort names.
        std::vector<std::string> Priv;
        for (const Symbol *Sym : Plan->PrivateScalars)
          Priv.push_back(Sym->name());
        for (const Symbol *Sym : Plan->PrivateArrays)
          Priv.push_back(Sym->name());
        std::sort(Priv.begin(), Priv.end());
        std::vector<std::string> Red;
        for (const Symbol *Sym : Plan->Reductions)
          Red.push_back(Sym->name());
        std::sort(Red.begin(), Red.end());

        Out += Pad + "!$iaa parallel do";
        if (!Priv.empty()) {
          Out += " private(";
          for (size_t I = 0; I < Priv.size(); ++I)
            Out += (I ? ", " : "") + Priv[I];
          Out += ")";
        }
        for (const std::string &R : Red)
          Out += " reduction(+:" + R + ")";
        Out += "\n";
      }
      Out += Pad;
      if (!DS->label().empty())
        Out += DS->label() + ": ";
      Out += "do " + DS->indexVar()->name() + " = " + DS->lower()->str() +
             ", " + DS->upper()->str();
      if (DS->step())
        Out += ", " + DS->step()->str();
      Out += "\n";
      emitBody(DS->body(), Result, Indent + 1, Out);
      Out += Pad + "end do\n";
      continue;
    }
    if (const auto *IS = dyn_cast<IfStmt>(S)) {
      Out += Pad + "if (" + IS->condition()->str() + ") then\n";
      emitBody(IS->thenBody(), Result, Indent + 1, Out);
      if (!IS->elseBody().empty()) {
        Out += Pad + "else\n";
        emitBody(IS->elseBody(), Result, Indent + 1, Out);
      }
      Out += Pad + "end if\n";
      continue;
    }
    if (const auto *WS = dyn_cast<WhileStmt>(S)) {
      Out += Pad + "while (" + WS->condition()->str() + ")\n";
      emitBody(WS->body(), Result, Indent + 1, Out);
      Out += Pad + "end while\n";
      continue;
    }
    Out += S->str(Indent);
  }
}

} // namespace

std::string xform::emitAnnotatedSource(const Program &P,
                                       const PipelineResult &Result) {
  std::string Out = "program p\n";
  for (const Symbol *Sym : P.symbols()) {
    Out += Sym->elementKind() == ScalarKind::Int ? "  integer "
                                                 : "  real ";
    Out += Sym->name();
    if (Sym->isArray()) {
      Out += "(";
      for (unsigned D = 0; D < Sym->rank(); ++D) {
        if (D)
          Out += ", ";
        Out += Sym->extent(D)->str();
      }
      Out += ")";
    }
    Out += "\n";
  }
  for (const Procedure *Proc : P.procedures()) {
    if (Proc->name() == "main")
      continue;
    Out += "  procedure " + Proc->name() + "\n";
    emitBody(Proc->body(), Result, 2, Out);
    Out += "  end\n";
  }
  if (const Procedure *Main = P.mainProcedure())
    emitBody(Main->body(), Result, 1, Out);
  Out += "end\n";
  return Out;
}
