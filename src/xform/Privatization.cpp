//===- xform/Privatization.cpp - Array and scalar privatization -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "xform/Privatization.h"

#include "analysis/SingleIndex.h"
#include "support/Statistic.h"
#include "support/Trace.h"

#include <functional>

using namespace iaa;
using namespace iaa::xform;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;

namespace {

/// Collects array-read references from an expression.
void collectArrayReads(const Expr *E,
                       std::vector<const mf::ArrayRef *> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::ArrayRef: {
    const auto *AR = cast<mf::ArrayRef>(E);
    Out.push_back(AR);
    for (const Expr *Sub : AR->subscripts())
      collectArrayReads(Sub, Out);
    return;
  }
  case ExprKind::Unary:
    collectArrayReads(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary:
    collectArrayReads(cast<BinaryExpr>(E)->lhs(), Out);
    collectArrayReads(cast<BinaryExpr>(E)->rhs(), Out);
    return;
  }
}

/// True when \p E is built from Var atoms only (no array elements, no
/// nonlinear nodes) — a "plain" subscript we can reason about directly.
bool isPlainSubscript(const SymExpr &E) {
  for (const auto &[Key, Term] : E.terms())
    if (Term.first->kind() != AtomKind::Var)
      return false;
  return true;
}

} // namespace

/// Per-candidate-array tracking during the walk.
struct Privatizer::ArrayState {
  bool Exposed = false;
  bool UsedCW = false;
  bool UsedStack = false;
  bool UsedCFB = false;
  /// Name of the index array whose CFB property bounded the reads.
  std::string CFBIndex;
  std::string Detail;
};

/// The UER walk. MUST-written sections are kept as a stack of overlays: the
/// innermost overlay collects writes of the loop being walked; on loop exit
/// it is aggregated over the loop index and merged one level up.
struct Privatizer::Walker {
  Privatizer &Priv;
  const DoStmt *Target;
  std::map<const Symbol *, ArrayState> &States;
  PrivatizationResult &Result;

  /// Overlay stack: Must[0] is the iteration level of the target loop.
  std::vector<std::map<const Symbol *, Section>> Must;
  /// MAY-written overlay stack mirroring Must, used only for the last-value
  /// proof. A Universe section marks writes that cannot be bounded.
  std::vector<std::map<const Symbol *, Section>> May;
  /// Loop context: (index, lo, up) of open inner loops.
  std::vector<const DoStmt *> OpenLoops;
  RangeEnv Env;
  /// Known constant values of scalars at the current walk point.
  std::map<const Symbol *, SymExpr> ScalarVals;

  Walker(Privatizer &Priv, const DoStmt *Target,
         std::map<const Symbol *, ArrayState> &States,
         PrivatizationResult &Result)
      : Priv(Priv), Target(Target), States(States), Result(Result) {
    Priv.Consts.bindAll(Env);
    Env.bindVar(Target->indexVar(),
                SymRange::of(SymExpr::fromAst(Target->lower()),
                             SymExpr::fromAst(Target->upper())));
    Must.emplace_back();
    May.emplace_back();
  }

  bool isCandidate(const Symbol *X) const { return States.count(X) != 0; }

  /// The union view of MUST-written sections for X across all levels is
  /// approximated by checking containment level by level.
  bool covered(const Symbol *X, const Section &Read) const {
    for (const auto &Level : Must) {
      auto It = Level.find(X);
      if (It != Level.end() &&
          Section::provablyContains(It->second, Read, Env))
        return true;
    }
    return false;
  }

  void addMustWrite(const Symbol *X, const Section &S) {
    auto &Level = Must.back();
    auto It = Level.find(X);
    if (It == Level.end())
      Level.emplace(X, S);
    else
      It->second = Section::unionMust(It->second, S, Env);
  }

  void addMayWrite(const Symbol *X, const Section &S) {
    auto &Level = May.back();
    auto It = Level.find(X);
    if (It == Level.end())
      Level.emplace(X, S);
    else
      It->second = Section::unionMay(It->second, S, Env);
  }

  /// Invalidate state depending on scalar \p S: its value changed. MUST
  /// sections can simply be dropped; MAY sections must over-approximate, so
  /// they widen to Universe instead.
  void scalarWritten(const Symbol *S) {
    ScalarVals.erase(S);
    for (auto &Level : Must)
      for (auto It = Level.begin(); It != Level.end();)
        if (It->second.referencesVar(S))
          It = Level.erase(It);
        else
          ++It;
    for (auto &Level : May)
      for (auto &[X, Sec] : Level)
        if (Sec.referencesVar(S))
          Sec = Section::universe();
  }

  /// The MAY-read section of one reference to candidate X at \p Site.
  /// Returns nullopt when it cannot be bounded (treat as exposed).
  std::optional<Section> readSection(const mf::ArrayRef *AR,
                                     const Stmt *Site) {
    if (AR->rank() != 1)
      return std::nullopt;
    SymExpr E = SymExpr::fromAst(AR->subscript(0));
    if (isPlainSubscript(E))
      return Section::point(E);

    // Indirect read x(ind(j)): bound the index array's values (CFB).
    if (!Priv.EnableIAA)
      return std::nullopt;
    AtomRef A = E.asSingleAtom();
    if (!A || A->kind() != AtomKind::ArrayElem || A->operands().size() != 1)
      return std::nullopt;
    const Symbol *Q = A->symbol();
    // The section of Q being read: sweep the subscript over the open inner
    // loops at this site.
    SymExpr SubLo = A->operands()[0];
    SymExpr SubHi = SubLo;
    for (auto It = OpenLoops.rbegin(); It != OpenLoops.rend(); ++It) {
      const DoStmt *DS = *It;
      SymRange LoSw = rangeOverVar(SubLo, DS->indexVar(),
                                   SymExpr::fromAst(DS->lower()),
                                   SymExpr::fromAst(DS->upper()));
      SymRange HiSw = rangeOverVar(SubHi, DS->indexVar(),
                                   SymExpr::fromAst(DS->lower()),
                                   SymExpr::fromAst(DS->upper()));
      if (!LoSw.Lo.isFinite() || !HiSw.Hi.isFinite())
        return std::nullopt;
      SubLo = LoSw.Lo.E;
      SubHi = HiSw.Hi.E;
    }
    ClosedFormBoundChecker CFB(Q, Priv.Uses);
    ++Result.PropertyQueries;
    PropertyResult PR =
        Priv.Solver.verifyBefore(Site, CFB, Section::interval(SubLo, SubHi));
    if (!PR.Verified)
      return std::nullopt;
    const SymRange &B = CFB.valueBounds();
    if (!B.Lo.isFinite() || !B.Hi.isFinite())
      return std::nullopt;
    States[AR->array()].UsedCFB = true;
    States[AR->array()].CFBIndex = Q->name();
    return Section::interval(B.Lo.E, B.Hi.E);
  }

  void processRead(const mf::ArrayRef *AR, const Stmt *Site) {
    const Symbol *X = AR->array();
    if (!isCandidate(X))
      return;
    ArrayState &St = States[X];
    if (St.Exposed)
      return;
    std::optional<Section> Read = readSection(AR, Site);
    if (!Read || !covered(X, *Read)) {
      St.Exposed = true;
      St.Detail = "read at " + Site->loc().str() + " not covered";
    }
  }

  void processReadsIn(const Expr *E, const Stmt *Site) {
    std::vector<const mf::ArrayRef *> Reads;
    collectArrayReads(E, Reads);
    for (const mf::ArrayRef *AR : Reads)
      processRead(AR, Site);
  }

  void walkAssign(AssignStmt *AS) {
    processReadsIn(AS->rhs(), AS);
    if (const mf::ArrayRef *T = AS->arrayTarget()) {
      for (const Expr *Sub : T->subscripts())
        processReadsIn(Sub, AS);
      if (isCandidate(T->array())) {
        bool Bounded = false;
        if (T->rank() == 1) {
          SymExpr E = SymExpr::fromAst(T->subscript(0));
          if (isPlainSubscript(E)) {
            addMustWrite(T->array(), Section::point(E));
            addMayWrite(T->array(), Section::point(E));
            Bounded = true;
          }
        }
        if (!Bounded)
          addMayWrite(T->array(), Section::universe());
      }
      return;
    }
    // Scalar assignment: track constants, invalidate dependents.
    const Symbol *S = AS->writtenSymbol();
    SymExpr V = SymExpr::fromAst(AS->rhs());
    scalarWritten(S);
    if (V.isConstant())
      ScalarVals.emplace(S, V);
  }

  void walkIf(IfStmt *IS) {
    processReadsIn(IS->condition(), IS);
    // Branches see the incoming state; afterwards only MUST facts valid on
    // both sides survive. Scalar constants diverge conservatively.
    auto MustIn = Must;
    auto ValsIn = ScalarVals;
    walkBody(IS->thenBody());
    auto MustThen = Must;
    auto ValsThen = ScalarVals;
    Must = MustIn;
    ScalarVals = ValsIn;
    walkBody(IS->elseBody());

    // Merge: per level, per array, intersect.
    for (size_t Lvl = 0; Lvl < Must.size(); ++Lvl) {
      std::map<const Symbol *, Section> Merged;
      for (const auto &[X, SecElse] : Must[Lvl]) {
        auto It = MustThen[Lvl].find(X);
        if (It == MustThen[Lvl].end())
          continue;
        Section M = Section::intersectMust(It->second, SecElse, Env);
        if (!M.isEmpty())
          Merged.emplace(X, M);
      }
      Must[Lvl] = std::move(Merged);
    }
    for (auto It = ScalarVals.begin(); It != ScalarVals.end();) {
      auto Jt = ValsThen.find(It->first);
      if (Jt == ValsThen.end() || !Jt->second.equals(It->second))
        It = ScalarVals.erase(It);
      else
        ++It;
    }
  }

  /// Consecutively-written contribution of a loop region (Sec. 2.2 +
  /// Sec. 5.1.2): for each candidate written in \p RegionBody that is
  /// single-indexed and consecutively written, and whose index variable has
  /// a known value c at region entry, the region MUST-writes [c+1 : p].
  std::map<const Symbol *, Section>
  cwContribution(const StmtList &RegionBody) {
    std::map<const Symbol *, Section> Adds;
    if (!Priv.EnableIAA)
      return Adds;
    UseSet BodyU = Priv.Uses.bodyUses(RegionBody);
    SingleIndexAnalysis SIA(RegionBody, Priv.Uses);
    for (const auto &[X, St] : States) {
      if (!BodyU.writes(X))
        continue;
      SingleIndexResult SR = SIA.classify(X);
      if (!SR.ConsecutivelyWritten || SR.HasReads)
        continue;
      auto ValIt = ScalarVals.find(SR.IndexVar);
      if (ValIt == ScalarVals.end())
        continue; // Unknown starting value of the index.
      Adds.emplace(X, Section::interval(ValIt->second + 1,
                                        SymExpr::var(SR.IndexVar)));
    }
    return Adds;
  }

  void walkDo(DoStmt *DS) {
    processReadsIn(DS->lower(), DS);
    processReadsIn(DS->upper(), DS);
    if (DS->step())
      processReadsIn(DS->step(), DS);

    const Symbol *I = DS->indexVar();
    SymExpr Lo = SymExpr::fromAst(DS->lower());
    SymExpr Up = SymExpr::fromAst(DS->upper());
    scalarWritten(I);
    UseSet BodyW = Priv.Uses.bodyUses(DS->body());

    // A consecutively-written candidate (e.g. a gather loop's index array)
    // covers [c+1 : counter] as a whole-loop effect. Computed against the
    // entry state, applied after the scalar invalidation below.
    std::map<const Symbol *, Section> CwAdds = cwContribution(DS->body());

    bool UnitStep = !DS->step();
    if (DS->step()) {
      SymExpr Step = SymExpr::fromAst(DS->step());
      UnitStep = Step.isConstant() && Step.constValue() == 1;
    }

    Env.bindVar(I, SymRange::of(Lo, Up));
    OpenLoops.push_back(DS);
    Must.emplace_back();
    May.emplace_back();
    walkBody(DS->body());
    std::map<const Symbol *, Section> LoopWrites = std::move(Must.back());
    Must.pop_back();
    std::map<const Symbol *, Section> LoopMay = std::move(May.back());
    May.pop_back();
    OpenLoops.pop_back();

    // Aggregate this loop's MUST writes over its iteration space. A section
    // whose bounds mention a scalar the body itself writes is not a fixed
    // function of the index and cannot be aggregated.
    auto VariesWithBody = [&](const Section &S) {
      for (const Symbol *W : BodyW.Writes)
        if (W != I && S.referencesVar(W))
          return true;
      return false;
    };
    if (UnitStep)
      for (const auto &[X, S] : LoopWrites) {
        if (VariesWithBody(S))
          continue;
        Section Agg = Section::aggregateMust(S, I, Lo, Up, Env);
        if (!Agg.isEmpty())
          addMustWrite(X, Agg);
      }
    for (const auto &[X, S] : LoopMay) {
      if (!UnitStep || VariesWithBody(S))
        addMayWrite(X, Section::universe());
      else
        addMayWrite(X, Section::aggregateMay(S, I, Lo, Up, Env));
    }

    // Scalars written by the loop body have unknown final values.
    for (const Symbol *W : BodyW.Writes)
      if (!W->isArray())
        scalarWritten(W);
    // After the loop the index holds up+1, not a value in [lo, up].
    Env.bindVar(I, SymRange::of(Lo, Up + 1));
    scalarWritten(I);

    for (const auto &[X, S] : CwAdds) {
      addMustWrite(X, S);
      States[X].UsedCW = true;
    }
  }

  void walkWhile(WhileStmt *WS) {
    processReadsIn(WS->condition(), WS);
    // Reads inside the while loop: conservatively exposed unless covered at
    // entry (trip count unknown, index values unknown) — except that a
    // consecutively-written array is *covered by itself* below.
    UseSet BodyU = Priv.Uses.bodyUses(WS->body());

    // The while body is not walked statement by statement, so any candidate
    // it writes has an unboundable MAY section.
    for (auto &[X, St] : States)
      if (BodyU.writes(X))
        addMayWrite(X, Section::universe());

    // CW contribution (Sec. 2.2 + Sec. 5.1.2): single-indexed arrays
    // consecutively written in the while body cover [c+1 : p].
    SingleIndexAnalysis SIA(WS->body(), Priv.Uses);
    std::map<const Symbol *, Section> CwAdds;
    std::set<const Symbol *> CwArrays;
    if (Priv.EnableIAA)
      for (const auto &[X, St] : States) {
        if (!BodyU.writes(X))
          continue;
        SingleIndexResult SR = SIA.classify(X);
        if (!SR.ConsecutivelyWritten || SR.HasReads)
          continue;
        auto ValIt = ScalarVals.find(SR.IndexVar);
        if (ValIt == ScalarVals.end())
          continue; // Unknown starting value of the index.
        CwAdds.emplace(X, Section::interval(ValIt->second + 1,
                                            SymExpr::var(SR.IndexVar)));
        CwArrays.insert(X);
      }

    // Any other candidate read inside the while is exposed unless already
    // fully covered; writes contribute no MUST (unknown trip count).
    for (auto &[X, St] : States) {
      if (CwArrays.count(X))
        continue;
      if (BodyU.reads(X) && !covered(X, Section::universe())) {
        St.Exposed = true;
        St.Detail = "read inside while loop";
      }
    }

    // Scalar effects.
    for (const Symbol *W : BodyU.Writes)
      if (!W->isArray())
        scalarWritten(W);

    for (const auto &[X, S] : CwAdds) {
      addMustWrite(X, S);
      States[X].UsedCW = true;
    }
  }

  void walkCall(CallStmt *CS) {
    const UseSet &U = Priv.Uses.procedureUses(CS->callee());
    for (auto &[X, St] : States) {
      if (U.reads(X) && !covered(X, Section::universe())) {
        St.Exposed = true;
        St.Detail = "read inside call to " + CS->calleeName();
      }
      if (U.writes(X))
        addMayWrite(X, Section::universe());
    }
    for (const Symbol *W : U.Writes)
      if (!W->isArray())
        scalarWritten(W);
  }

  /// Call after the walk. True when copying the final iteration's private
  /// copy of \p X back reproduces serial last-value semantics: every
  /// iteration MUST-writes a section M that is invariant in the target loop
  /// index (so each iteration overwrites the same elements with its own
  /// values), and every MAY write lands inside M (so elements outside M keep
  /// their pre-loop, copy-in values). MUST sections referencing scalars the
  /// body writes were already dropped by scalarWritten, so a surviving M is
  /// the same section on every iteration.
  bool lastValueProvable(const Symbol *X) const {
    auto MI = Must.front().find(X);
    if (MI == Must.front().end())
      return false;
    const Section &M = MI->second;
    if (M.isEmpty() || M.referencesVar(Target->indexVar()))
      return false;
    auto YI = May.front().find(X);
    if (YI == May.front().end())
      return true;
    return Section::provablyContains(M, YI->second, Env);
  }

  void walkBody(const StmtList &Body) {
    for (Stmt *S : Body) {
      switch (S->kind()) {
      case StmtKind::Assign:
        walkAssign(cast<AssignStmt>(S));
        break;
      case StmtKind::If:
        walkIf(cast<IfStmt>(S));
        break;
      case StmtKind::Do:
        walkDo(cast<DoStmt>(S));
        break;
      case StmtKind::While:
        walkWhile(cast<WhileStmt>(S));
        break;
      case StmtKind::Call:
        walkCall(cast<CallStmt>(S));
        break;
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Scalar classification
//===----------------------------------------------------------------------===//

namespace {

enum class ScalarState { NotWritten = 0, MaybeWritten = 1, Written = 2 };

struct ScalarWalk {
  const UseSet &BodyWrites;
  const Symbol *LoopIndex;
  const std::set<const Symbol *> &ReductionVars;
  const std::set<const AssignStmt *> &ReductionStmts;
  std::map<const Symbol *, ScalarState> State;
  std::set<const Symbol *> Carried;
  const SymbolUses &Uses;

  ScalarState stateOf(const Symbol *S) const {
    auto It = State.find(S);
    return It == State.end() ? ScalarState::NotWritten : It->second;
  }

  void readScalar(const Symbol *S) {
    if (S->isArray() || S == LoopIndex)
      return;
    if (!BodyWrites.writes(S))
      return; // Loop-invariant input.
    if (ReductionVars.count(S))
      return; // Reduction reads are handled by the runtime.
    if (stateOf(S) != ScalarState::Written)
      Carried.insert(S);
  }

  void readExpr(const Expr *E) {
    UseSet U;
    SymbolUses::exprReads(E, U);
    for (const Symbol *S : U.Reads)
      readScalar(S);
  }

  void write(const Symbol *S, ScalarState St) {
    auto [It, Inserted] = State.try_emplace(S, St);
    if (!Inserted)
      It->second = std::max(It->second, St);
  }

  /// Per-symbol minimum of two state maps (absent = NotWritten).
  static std::map<const Symbol *, ScalarState>
  meet(const std::map<const Symbol *, ScalarState> &A,
       const std::map<const Symbol *, ScalarState> &B) {
    std::map<const Symbol *, ScalarState> Out;
    for (const auto &[Sym, St] : A) {
      auto It = B.find(Sym);
      Out[Sym] = std::min(St, It == B.end() ? ScalarState::NotWritten
                                            : It->second);
    }
    for (const auto &[Sym, St] : B)
      if (!A.count(Sym))
        Out[Sym] = ScalarState::NotWritten;
    return Out;
  }

  /// Walks one block. Within a linear flow a write is definite for
  /// downstream reads in the same flow; constructs that may not execute
  /// (branches, zero-trip loops) demote their writes at the merge point.
  void walk(const StmtList &Body) {
    for (const Stmt *S : Body) {
      switch (S->kind()) {
      case StmtKind::Assign: {
        const auto *AS = cast<AssignStmt>(S);
        if (!ReductionStmts.count(AS))
          readExpr(AS->rhs());
        if (const mf::ArrayRef *T = AS->arrayTarget()) {
          for (const Expr *Sub : T->subscripts())
            readExpr(Sub);
        } else {
          write(AS->writtenSymbol(), ScalarState::Written);
        }
        break;
      }
      case StmtKind::If: {
        const auto *IS = cast<IfStmt>(S);
        readExpr(IS->condition());
        auto Snapshot = State;
        walk(IS->thenBody());
        auto ThenState = State;
        State = Snapshot;
        walk(IS->elseBody());
        State = meet(ThenState, State);
        break;
      }
      case StmtKind::Do: {
        const auto *DS = cast<DoStmt>(S);
        readExpr(DS->lower());
        readExpr(DS->upper());
        if (DS->step())
          readExpr(DS->step());
        auto Entry = State;
        write(DS->indexVar(), ScalarState::Written);
        // The first iteration sees the entry state; later iterations see
        // strictly more writes, so checking the first is conservative.
        walk(DS->body());
        // The loop may be zero-trip: keep only what held on entry.
        State = meet(Entry, State);
        break;
      }
      case StmtKind::While: {
        const auto *WS = cast<WhileStmt>(S);
        readExpr(WS->condition());
        auto Entry = State;
        walk(WS->body());
        State = meet(Entry, State);
        break;
      }
      case StmtKind::Call: {
        const auto *CS = cast<CallStmt>(S);
        const UseSet &U = Uses.procedureUses(CS->callee());
        for (const Symbol *R : U.Reads)
          readScalar(R);
        for (const Symbol *W : U.Writes)
          if (!W->isArray())
            write(W, ScalarState::MaybeWritten);
        break;
      }
      }
    }
  }
};

/// Finds scalar sum reductions: every access to s in the body is the single
/// statement `s = s + e` (or `s = e + s`) with e independent of s.
void findReductions(const DoStmt *L, const SymbolUses &Uses,
                    std::set<const Symbol *> &Vars,
                    std::set<const AssignStmt *> &Stmts) {
  std::map<const Symbol *, std::vector<const AssignStmt *>> RedCandidates;
  std::map<const Symbol *, unsigned> OtherUses;

  Program::forEachStmtIn(L->body(), [&](Stmt *S) {
    UseSet U;
    const AssignStmt *AS = dyn_cast<AssignStmt>(S);
    bool IsRed = false;
    const Symbol *RedVar = nullptr;
    if (AS && !AS->arrayTarget()) {
      // Match s = s + e (or s = e + s) at the AST level: real-typed scalars
      // become opaque symbolic atoms, so SymExpr cannot see the recurrence.
      const Symbol *T = AS->writtenSymbol();
      if (const auto *BE = dyn_cast<BinaryExpr>(AS->rhs());
          BE && BE->op() == BinaryOp::Add) {
        const Expr *Self = nullptr;
        const Expr *Other = nullptr;
        if (const auto *L = dyn_cast<VarRef>(BE->lhs());
            L && L->symbol() == T) {
          Self = BE->lhs();
          Other = BE->rhs();
        } else if (const auto *R2 = dyn_cast<VarRef>(BE->rhs());
                   R2 && R2->symbol() == T) {
          Self = BE->rhs();
          Other = BE->lhs();
        }
        if (Self) {
          UseSet OtherReads;
          SymbolUses::exprReads(Other, OtherReads);
          if (!OtherReads.reads(T)) {
            IsRed = true;
            RedVar = T;
          }
        }
      }
    }
    // Count uses of every scalar in this statement.
    switch (S->kind()) {
    case StmtKind::Assign: {
      SymbolUses::exprReads(cast<AssignStmt>(S)->rhs(), U);
      if (const mf::ArrayRef *T = cast<AssignStmt>(S)->arrayTarget())
        for (const Expr *Sub : T->subscripts())
          SymbolUses::exprReads(Sub, U);
      if (!cast<AssignStmt>(S)->arrayTarget())
        U.Writes.insert(cast<AssignStmt>(S)->writtenSymbol());
      break;
    }
    case StmtKind::If:
      SymbolUses::exprReads(cast<IfStmt>(S)->condition(), U);
      break;
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      SymbolUses::exprReads(DS->lower(), U);
      SymbolUses::exprReads(DS->upper(), U);
      if (DS->step())
        SymbolUses::exprReads(DS->step(), U);
      break;
    }
    case StmtKind::While:
      SymbolUses::exprReads(cast<WhileStmt>(S)->condition(), U);
      break;
    case StmtKind::Call: {
      const UseSet &PU = Uses.procedureUses(cast<CallStmt>(S)->callee());
      U.merge(PU);
      break;
    }
    }

    if (IsRed) {
      RedCandidates[RedVar].push_back(AS);
      // The reduction statement's own read/write of RedVar is expected;
      // other symbols it reads count as ordinary uses.
      U.Reads.erase(RedVar);
      U.Writes.erase(RedVar);
    }
    for (const Symbol *R : U.Reads)
      if (!R->isArray())
        ++OtherUses[R];
    for (const Symbol *W : U.Writes)
      if (!W->isArray())
        ++OtherUses[W];
  });

  for (const auto &[Var, List] : RedCandidates) {
    if (OtherUses.count(Var))
      continue; // Used outside its reduction statements.
    Vars.insert(Var);
    Stmts.insert(List.begin(), List.end());
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

#define IAA_STAT_GROUP "privatization"
IAA_STAT(priv_loops_analyzed, "Loops run through the privatizer");
IAA_STAT(priv_arrays_privatized, "Arrays proven privatizable");
IAA_STAT(priv_arrays_exposed, "Arrays with exposed upward reads");

PrivatizationResult Privatizer::analyze(const DoStmt *L) {
  trace::TraceScope Span("privatization", "xform");
  if (Span.active() && !L->label().empty())
    Span.arg("loop", L->label());
  ++priv_loops_analyzed;
  PrivatizationResult Result;
  UseSet BodyU = Uses.bodyUses(L->body());

  // Candidate arrays: rank-1 arrays written in the body.
  std::map<const Symbol *, ArrayState> States;
  for (const Symbol *W : BodyU.Writes)
    if (W->isArray() && W->rank() == 1)
      States.emplace(W, ArrayState());

  // Stack rule (Sec. 2.3): stacks with a per-iteration reset are private.
  std::set<const Symbol *> StackPrivate;
  if (EnableIAA) {
    SingleIndexAnalysis SIA(L->body(), Uses);
    for (auto &[X, St] : States) {
      SingleIndexResult SR = SIA.classify(X);
      if (SR.StackAccess) {
        St.UsedStack = true;
        StackPrivate.insert(X);
      }
    }
  }

  // UER walk for the remaining candidates.
  std::map<const Symbol *, bool> LastValue;
  {
    std::map<const Symbol *, ArrayState> WalkStates;
    for (auto &[X, St] : States)
      if (!StackPrivate.count(X))
        WalkStates.emplace(X, St);
    Walker W(*this, L, WalkStates, Result);
    W.walkBody(L->body());
    for (auto &[X, St] : WalkStates) {
      States[X] = St;
      LastValue[X] = W.lastValueProvable(X);
    }
  }

  // Liveness: arrays referenced outside the loop need a copy-out, which is
  // only meaningful when the written section does not depend on the
  // iteration (we conservatively require invariance of nothing here and
  // instead flag LiveOut for the runtime to copy the last iteration back).
  auto ReferencedOutside = [&](const Symbol *X) {
    bool Outside = false;
    bool InLoop = false;
    G.program().forEachStmt([&](Stmt *S) {
      // Is S inside L?
      const Stmt *P = S;
      bool Inside = false;
      for (; P; P = P->parent())
        if (P == L)
          Inside = true;
      if (Inside) {
        InLoop = true;
        return;
      }
      UseSet U = Uses.stmtUses(S);
      // stmtUses on compound statements double-counts nested children, but
      // for a boolean query that is fine.
      if (S->kind() == StmtKind::Assign || S->kind() == StmtKind::Call)
        if (U.touches(X))
          Outside = true;
      if (S->kind() != StmtKind::Assign && S->kind() != StmtKind::Call) {
        // Conditions and bounds only.
        UseSet Head;
        switch (S->kind()) {
        case StmtKind::If:
          SymbolUses::exprReads(cast<IfStmt>(S)->condition(), Head);
          break;
        case StmtKind::Do: {
          const auto *DS = cast<DoStmt>(S);
          SymbolUses::exprReads(DS->lower(), Head);
          SymbolUses::exprReads(DS->upper(), Head);
          break;
        }
        case StmtKind::While:
          SymbolUses::exprReads(cast<WhileStmt>(S)->condition(), Head);
          break;
        default:
          break;
        }
        if (Head.touches(X))
          Outside = true;
      }
    });
    (void)InLoop;
    return Outside;
  };

  for (auto &[X, St] : States) {
    ArrayPrivOutcome O;
    O.Array = X;
    O.Privatizable = StackPrivate.count(X) || !St.Exposed;
    if (St.UsedStack) {
      O.Reason = "STACK";
      O.PropertiesUsed.push_back(X->name() + ":STACK");
    } else if (St.UsedCW) {
      O.Reason = "CW";
      O.PropertiesUsed.push_back(X->name() + ":CW");
      if (St.UsedCFB)
        O.PropertiesUsed.push_back(St.CFBIndex + ":CFB");
    } else if (St.UsedCFB) {
      O.Reason = "CFB-indirect";
      O.PropertiesUsed.push_back(St.CFBIndex + ":CFB");
    } else {
      O.Reason = "affine";
    }
    O.Detail = St.Detail;
    O.LiveOut = ReferencedOutside(X);
    auto LV = LastValue.find(X);
    O.LastValueOk =
        O.Privatizable && LV != LastValue.end() && LV->second;
    if (O.Privatizable) {
      ++priv_arrays_privatized;
      Result.Arrays.insert(X);
    } else {
      ++priv_arrays_exposed;
    }
    Result.Outcomes.push_back(std::move(O));
  }

  // Scalars.
  std::set<const AssignStmt *> RedStmts;
  findReductions(L, Uses, Result.Scalars.Reductions, RedStmts);
  ScalarWalk SW{BodyU, L->indexVar(), Result.Scalars.Reductions, RedStmts,
                {},    {},            Uses};
  SW.walk(L->body());
  Result.Scalars.Carried = SW.Carried;
  for (const Symbol *W : BodyU.Writes)
    if (!W->isArray() && !Result.Scalars.Reductions.count(W) &&
        !Result.Scalars.Carried.count(W))
      Result.Scalars.Private.insert(W);

  return Result;
}
