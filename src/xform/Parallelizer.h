//===- xform/Parallelizer.h - The Polaris-style pipeline --------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-compiler driver, phase-ordered as Fig. 15(b): normalization,
/// induction variable substitution, constant propagation, forward
/// substitution, dead code elimination for every program unit; then
/// privatization, reduction recognition, and the dependence tests. Three
/// configurations reproduce the experimental setups of Fig. 16:
///
///  - Full:  Polaris with irregular array access analysis (the paper);
///  - NoIAA: Polaris without the new analyses (classical symbolic tests);
///  - Apo:   a vendor-style auto-parallelizer (affine tests only, no
///           reductions, no array privatization).
///
/// The output is a per-loop report (feeding Tables 2/3) and a parallel
/// execution plan consumed by the interpreter (feeding Fig. 16).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_XFORM_PARALLELIZER_H
#define IAA_XFORM_PARALLELIZER_H

#include "deptest/DependenceTest.h"
#include "mf/Program.h"
#include "support/Remarks.h"
#include "xform/Privatization.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace iaa {
namespace xform {

/// Pipeline configuration (the three curves of Fig. 16).
enum class PipelineMode { Full, NoIAA, Apo };

const char *pipelineModeName(PipelineMode M);

/// The execution plan for one parallel loop, consumed by the interpreter.
struct LoopPlan {
  const mf::DoStmt *Loop = nullptr;
  bool Parallel = false;
  /// Arrays given per-thread copies.
  std::set<const mf::Symbol *> PrivateArrays;
  /// Privatized arrays that are live after the loop and whose post-loop
  /// contents are reproduced by the last-value writeback (the privatizer
  /// proved every iteration MUST-writes the same index-invariant section
  /// covering all MAY writes). Excluded from deadPrivateIds.
  std::set<const mf::Symbol *> LiveOutArrays;
  /// Scalars given per-thread copies (everything written in the body that
  /// is not a reduction).
  std::set<const mf::Symbol *> PrivateScalars;
  /// Scalar sum reductions merged after the loop.
  std::set<const mf::Symbol *> Reductions;
  /// Runtime-check obligations (inspector/executor): when RuntimeConditional
  /// is set, Parallel stays false and the loop may run in parallel only
  /// after an O(n) inspection of the named index arrays discharges every
  /// check for the actual data; serial execution is always a sound
  /// fallback.
  std::vector<deptest::RuntimeCheck> RuntimeChecks;
  bool RuntimeConditional = false;
  /// True when Parallel rests on recurrence facts about an index array's
  /// building loop (RecurrenceSolver.h): the loop would have dispatched
  /// runtime-conditionally without them. The auditor re-derives every such
  /// fact from scratch; under --audit=strict a promotion it cannot certify
  /// is demoted back to conditional dispatch on FallbackChecks.
  bool RecurrencePromoted = false;
  /// The runtime checks a recurrence-promoted loop would have carried
  /// without the facts (empty for plans that are not recurrence-promoted).
  std::vector<deptest::RuntimeCheck> FallbackChecks;
  /// The index array driving the loop's irregular accesses (an injective
  /// gather/scatter check's index when one exists, else the first checked
  /// index array). The locality scheduler treats it as the gather source:
  /// the footprint model scores the loop as a gather, and the inspector's
  /// reorder pass buckets iterations by the cache line its entries target.
  /// Null when the loop has no runtime-checked index array.
  const mf::Symbol *LocalityIndexArray = nullptr;
  /// Every symbol the loop body MAY write (transitively through calls),
  /// including the index variable — the loop's conservative write
  /// footprint. The fault-containment runtime snapshots exactly this set
  /// before a transactional parallel dispatch, so a rolled-back loop
  /// restores every buffer the body could have touched.
  std::set<const mf::Symbol *> WriteEffects;
  /// True when the loop body passed the bytecode compiler's structural
  /// pre-check (vm/Compiler.h): under --engine=vm its parallel chunks run
  /// on the register VM instead of the tree walk. Advisory — the VM
  /// compiler can still bail at execution time, and VmBailout records why
  /// a structurally-ineligible body must stay on the interpreter. Only set
  /// for plans that can dispatch parallel.
  bool VmEligible = false;
  std::string VmBailout;
};

/// Analysis record for one loop (feeds Table 3).
struct LoopReport {
  const mf::DoStmt *Loop = nullptr;
  std::string Label;
  bool Parallel = false;
  /// Statically serial, but parallel conditional on runtime checks.
  bool RuntimeConditional = false;
  /// Parallel thanks to consumed recurrence facts (see LoopPlan).
  bool RecurrencePromoted = false;
  std::string WhyNot;
  std::vector<deptest::ArrayDepOutcome> DepOutcomes;
  std::vector<ArrayPrivOutcome> PrivOutcomes;
  std::set<const mf::Symbol *> Reductions;
  unsigned PropertyQueries = 0;
};

/// Whole-pipeline result (feeds Table 2 and the interpreter).
struct PipelineResult {
  std::vector<LoopReport> Loops;
  std::map<const mf::DoStmt *, LoopPlan> Plans;
  /// Wall-clock seconds of the whole pipeline run.
  double TotalSeconds = 0;
  /// Seconds spent inside the array property analysis (Table 2, col. 5).
  double PropertySeconds = 0;
  unsigned ConstantsPropagated = 0;
  unsigned ForwardSubstitutions = 0;
  unsigned DeadRemoved = 0;
  unsigned InductionsSubstituted = 0;
  /// Wall-clock seconds per pipeline phase, in execution order.
  std::vector<std::pair<std::string, double>> PhaseSeconds;
  /// One optimization remark per analyzed loop (backs each WhyNot string).
  std::vector<Remark> Remarks;
  /// Diagnostics emitted by the in-pipeline normalization passes.
  unsigned ErrorCount = 0;

  /// Per-loop verdict of the independent plan auditor (verify::recordAudit
  /// fills this; empty unless an audit ran).
  struct AuditOutcome {
    std::string Loop;    ///< Loop label.
    std::string Verdict; ///< "certified", "rejected", or "unknown".
    bool Demoted = false; ///< Plan demoted to serial (--audit=strict).
    std::string Detail;  ///< Why the loop is not certified.
  };
  std::vector<AuditOutcome> AuditOutcomes;

  /// The plan for \p L (null when the loop is serial).
  const LoopPlan *planFor(const mf::DoStmt *L) const {
    auto It = Plans.find(L);
    return It == Plans.end() || !It->second.Parallel ? nullptr : &It->second;
  }

  /// The runtime-conditional plan for \p L: statically serial, but
  /// parallelizable if the attached runtime checks pass inspection. Null
  /// when the loop is unconditionally parallel or unconditionally serial.
  const LoopPlan *conditionalPlanFor(const mf::DoStmt *L) const {
    auto It = Plans.find(L);
    if (It == Plans.end() || It->second.Parallel ||
        !It->second.RuntimeConditional || It->second.RuntimeChecks.empty())
      return nullptr;
    return &It->second;
  }

  /// The report for the loop labeled \p Label, or null.
  const LoopReport *reportFor(const std::string &Label) const {
    for (const LoopReport &R : Loops)
      if (R.Label == Label)
        return &R;
    return nullptr;
  }

  /// A human-readable summary of every analyzed loop.
  std::string str() const;
};

/// Runs the full pipeline over \p P (mutates it: normalization passes are
/// source-to-source). The program must already be parsed and error-free.
PipelineResult parallelize(mf::Program &P, PipelineMode Mode);

} // namespace xform
} // namespace iaa

#endif // IAA_XFORM_PARALLELIZER_H
