//===- xform/Passes.h - Polaris-style normalization passes ------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalization phases that run before the analyses, in the order of
/// Fig. 15(b): program normalization, induction variable substitution,
/// constant propagation, forward substitution, and dead code elimination.
/// Each returns the number of changes it made so the pipeline can report
/// per-phase work (and the tests can pin behavior).
///
/// All passes are semantics-preserving source-to-source rewrites of the MF
/// AST; the interpreter executes the transformed program.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_XFORM_PASSES_H
#define IAA_XFORM_PASSES_H

#include "mf/Program.h"
#include "support/Diagnostics.h"

namespace iaa {
namespace xform {

/// Checks normalization preconditions (do steps constant, call targets
/// resolved) and reports violations. Returns true when the program is
/// analyzable.
bool normalizeProgram(mf::Program &P, DiagnosticEngine &Diags);

/// Replaces reads of whole-program constants (scalars assigned exactly once
/// with a constant) by integer literals. The defining assignments stay.
unsigned propagateConstants(mf::Program &P);

/// Forward substitution: after `t = e` (t an integer scalar), replaces
/// subsequent reads of t by e while neither t nor anything e depends on is
/// redefined. This is what exposes `z(k, jj)` with `jj = ind(j)` as the
/// indirect access `z(k, ind(j))` to the dependence tests (Sec. 5.1).
unsigned forwardSubstitute(mf::Program &P);

/// Removes assignments to scalars that are never read anywhere (typically
/// temporaries made dead by forward substitution).
unsigned eliminateDeadCode(mf::Program &P);

/// Minimal induction variable substitution: when a do-loop body *starts*
/// with the only definition of p in the loop, `p = p + c`, and a constant
/// assignment `p = c0` immediately precedes the loop, reads of p inside the
/// body are rewritten to `c0 + c*(i - lo + 1)`. The increment itself stays
/// (p remains correct after the loop).
unsigned substituteInductions(mf::Program &P);

} // namespace xform
} // namespace iaa

#endif // IAA_XFORM_PASSES_H
