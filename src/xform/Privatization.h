//===- xform/Privatization.h - Array and scalar privatization ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array privatization in the Tu-Padua style used by Polaris (Sec. 5.1.4):
/// an array can be privatized for a loop when its per-iteration upward
/// exposed read set is empty — every read is covered by a MUST-write earlier
/// in the same iteration. The paper's extensions, all implemented here:
///
///  - *consecutively written* single-indexed regions (Sec. 2.2) contribute
///    the MUST section [c+1 : p] where c is the reset value of the index
///    before the region and p its value after (Fig. 1(a));
///  - *array stacks* (Sec. 2.3) are privatizable outright when the stack
///    pointer is reset at the top of each iteration (Fig. 1(b));
///  - *indirect reads* x(ind(j)) are approximated by [min ind : max ind]
///    using the closed-form bound property of the index array verified by
///    the array property analysis ("this approximation works for read sets
///    only", Sec. 5.1.4).
///
/// Scalar classification (private / reduction / carried) for the parallel
/// plan lives here too, since it shares the same walk infrastructure.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_XFORM_PRIVATIZATION_H
#define IAA_XFORM_PRIVATIZATION_H

#include "analysis/GlobalConstants.h"
#include "analysis/PropertySolver.h"
#include "analysis/SymbolUses.h"
#include "cfg/Hcg.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace iaa {
namespace xform {

/// Per-array outcome of the privatization analysis for one loop.
struct ArrayPrivOutcome {
  const mf::Symbol *Array = nullptr;
  bool Privatizable = false;
  /// "affine", "CW", "STACK", or "CFB-indirect" — the mechanism that
  /// established coverage (the most advanced one used).
  std::string Reason;
  std::vector<std::string> PropertiesUsed;
  std::string Detail;
  /// True when the array is referenced outside the loop, so the runtime
  /// must copy the last iteration's private copy back.
  bool LiveOut = false;
  /// True when copying the final iteration's private copy back provably
  /// reproduces serial last-value semantics: the per-iteration MUST-written
  /// section is invariant in the loop index and covers every MAY write, so
  /// each iteration writes the same elements and everything else keeps its
  /// pre-loop (copy-in) value. Live-out privatized arrays without this
  /// proof keep the loop serial.
  bool LastValueOk = false;
};

/// Scalar classification for a candidate parallel loop.
struct ScalarClassification {
  std::set<const mf::Symbol *> Private;    ///< Written before read.
  std::set<const mf::Symbol *> Reductions; ///< s = s + e sum reductions.
  std::set<const mf::Symbol *> Carried;    ///< Cross-iteration flow: block.
};

/// Result of privatization analysis on one loop.
struct PrivatizationResult {
  std::set<const mf::Symbol *> Arrays; ///< Privatizable arrays.
  std::vector<ArrayPrivOutcome> Outcomes;
  ScalarClassification Scalars;
  unsigned PropertyQueries = 0;
};

/// The privatizer.
class Privatizer {
public:
  Privatizer(cfg::Hcg &G, const analysis::SymbolUses &Uses, bool EnableIAA)
      : G(G), Uses(Uses), Consts(G.program()), Solver(G, Uses),
        EnableIAA(EnableIAA) {}

  /// Routes property-analysis time into \p T (for Table 2).
  void setPropertyTimer(AccumulatingTimer *T) { Solver.setTimer(T); }

  /// Analyzes loop \p L; returns privatizable arrays and the scalar
  /// classification.
  PrivatizationResult analyze(const mf::DoStmt *L);

private:
  struct ArrayState;
  struct Walker;

  cfg::Hcg &G;
  const analysis::SymbolUses &Uses;
  analysis::GlobalConstants Consts;
  analysis::PropertySolver Solver;
  bool EnableIAA;
};

} // namespace xform
} // namespace iaa

#endif // IAA_XFORM_PRIVATIZATION_H
