//===- xform/Passes.cpp - Polaris-style normalization passes --------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "xform/Passes.h"

#include "analysis/GlobalConstants.h"
#include "analysis/SymbolUses.h"
#include "symbolic/SymExpr.h"

#include <functional>
#include <set>

using namespace iaa;
using namespace iaa::xform;
using namespace iaa::mf;

namespace {

/// Rebuilds \p E, replacing each scalar VarRef through \p OnVar (which
/// returns null to keep the reference).
const Expr *
rewriteExpr(Program &P, const Expr *E,
            const std::function<const Expr *(const VarRef *)> &OnVar,
            bool &Changed) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
    return E;
  case ExprKind::VarRef: {
    const auto *VR = cast<VarRef>(E);
    if (const Expr *Repl = OnVar(VR)) {
      Changed = true;
      return Repl;
    }
    return E;
  }
  case ExprKind::ArrayRef: {
    const auto *AR = cast<mf::ArrayRef>(E);
    std::vector<const Expr *> Subs;
    bool Any = false;
    for (const Expr *Sub : AR->subscripts()) {
      bool SubChanged = false;
      Subs.push_back(rewriteExpr(P, Sub, OnVar, SubChanged));
      Any |= SubChanged;
    }
    if (!Any)
      return E;
    Changed = true;
    return P.makeArrayRef(AR->array(), std::move(Subs), AR->loc());
  }
  case ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    bool SubChanged = false;
    const Expr *Op = rewriteExpr(P, UE->operand(), OnVar, SubChanged);
    if (!SubChanged)
      return E;
    Changed = true;
    return P.makeUnary(UE->op(), Op, UE->loc());
  }
  case ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    bool LC = false, RC = false;
    const Expr *L = rewriteExpr(P, BE->lhs(), OnVar, LC);
    const Expr *R = rewriteExpr(P, BE->rhs(), OnVar, RC);
    if (!LC && !RC)
      return E;
    Changed = true;
    return P.makeBinary(BE->op(), L, R, BE->loc());
  }
  }
  return E;
}

/// Rewrites the read positions of one statement (RHS, LHS subscripts,
/// conditions, loop bounds) in place; does not descend into nested bodies.
bool rewriteStmtReads(
    Program &P, Stmt *S,
    const std::function<const Expr *(const VarRef *)> &OnVar) {
  bool Changed = false;
  switch (S->kind()) {
  case StmtKind::Assign: {
    auto *AS = cast<AssignStmt>(S);
    AS->setRHS(rewriteExpr(P, AS->rhs(), OnVar, Changed));
    if (const mf::ArrayRef *T = AS->arrayTarget()) {
      std::vector<const Expr *> Subs;
      bool Any = false;
      for (const Expr *Sub : T->subscripts()) {
        bool SubChanged = false;
        Subs.push_back(rewriteExpr(P, Sub, OnVar, SubChanged));
        Any |= SubChanged;
      }
      if (Any) {
        Changed = true;
        // Rebuild the whole assignment with a fresh target; the new node
        // replaces the old statement's LHS via a const_cast-free route:
        // AssignStmt stores the target as an Expr, so create a new ref and
        // swap the statement wholesale is unnecessary — instead rebuild the
        // target in place through a new AssignStmt is avoided by keeping
        // the Expr immutable and replacing the pointer.
        const Expr *NewT = P.makeArrayRef(T->array(), std::move(Subs),
                                          T->loc());
        AS->setLHS(NewT);
      }
    }
    return Changed;
  }
  case StmtKind::If: {
    auto *IS = cast<IfStmt>(S);
    IS->setCondition(rewriteExpr(P, IS->condition(), OnVar, Changed));
    return Changed;
  }
  case StmtKind::Do: {
    auto *DS = cast<DoStmt>(S);
    DS->setBounds(rewriteExpr(P, DS->lower(), OnVar, Changed),
                  rewriteExpr(P, DS->upper(), OnVar, Changed),
                  DS->step() ? rewriteExpr(P, DS->step(), OnVar, Changed)
                             : nullptr);
    return Changed;
  }
  case StmtKind::While: {
    auto *WS = cast<WhileStmt>(S);
    WS->setCondition(rewriteExpr(P, WS->condition(), OnVar, Changed));
    return Changed;
  }
  case StmtKind::Call:
    return false;
  }
  return Changed;
}

} // namespace

//===----------------------------------------------------------------------===//
// Normalization
//===----------------------------------------------------------------------===//

bool iaa::xform::normalizeProgram(Program &P, DiagnosticEngine &Diags) {
  bool Ok = true;
  P.forEachStmt([&](Stmt *S) {
    if (const auto *DS = dyn_cast<DoStmt>(S)) {
      if (DS->step()) {
        sym::SymExpr Step = sym::SymExpr::fromAst(DS->step());
        if (!Step.isConstant() || Step.constValue() == 0) {
          Diags.error(DS->loc(), "do-loop step must be a nonzero constant");
          Ok = false;
        }
      }
    }
    if (const auto *CS = dyn_cast<CallStmt>(S))
      if (!CS->callee()) {
        Diags.error(CS->loc(), "unresolved call target");
        Ok = false;
      }
  });
  return Ok;
}

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

unsigned iaa::xform::propagateConstants(Program &P) {
  analysis::GlobalConstants Consts(P);
  unsigned Changes = 0;
  auto OnVar = [&](const VarRef *VR) -> const Expr * {
    if (auto V = Consts.valueOf(VR->symbol())) {
      ++Changes;
      return P.makeIntLit(*V, VR->loc());
    }
    return nullptr;
  };
  P.forEachStmt([&](Stmt *S) { rewriteStmtReads(P, S, OnVar); });
  return Changes;
}

//===----------------------------------------------------------------------===//
// Forward substitution
//===----------------------------------------------------------------------===//

namespace {

/// Substitutes reads of \p T by \p Repl through \p Body starting at
/// \p StartIdx, stopping when T or anything Repl depends on is redefined.
void substituteForward(Program &P, const analysis::SymbolUses &Uses,
                       StmtList &Body, size_t StartIdx, const Symbol *T,
                       const Expr *Repl, const analysis::UseSet &ReplDeps,
                       unsigned &Changes) {
  auto OnVar = [&](const VarRef *VR) -> const Expr * {
    return VR->symbol() == T ? Repl : nullptr;
  };
  auto Conflicts = [&](const analysis::UseSet &W) {
    if (W.writes(T))
      return true;
    for (const Symbol *D : ReplDeps.Reads)
      if (W.writes(D))
        return true;
    return false;
  };

  for (size_t I = StartIdx; I < Body.size(); ++I) {
    Stmt *S = Body[I];
    // Stop at a redefinition of t itself *without* rewriting it: updates
    // like `p = p + 1` must keep their recurrence shape (the single-indexed
    // analysis of Sec. 2 pattern-matches on it).
    if (const auto *AS = dyn_cast<AssignStmt>(S))
      if (!AS->arrayTarget() && AS->writtenSymbol() == T)
        return;
    analysis::UseSet U = Uses.stmtUses(S);
    // A while condition re-evaluates after every body execution, so it may
    // only be rewritten when the body (and the condition itself) is
    // conflict-free. Every other statement head evaluates exactly once,
    // before the statement's own writes.
    if (auto *WhileS = dyn_cast<WhileStmt>(S)) {
      if (Conflicts(U))
        return;
      if (rewriteStmtReads(P, WhileS, OnVar))
        ++Changes;
      substituteForward(P, Uses, WhileS->body(), 0, T, Repl, ReplDeps,
                        Changes);
      continue;
    }
    if (rewriteStmtReads(P, S, OnVar))
      ++Changes;
    if (auto *IS = dyn_cast<IfStmt>(S)) {
      if (Conflicts(U))
        return; // A branch may redefine; stop at the join conservatively.
      substituteForward(P, Uses, IS->thenBody(), 0, T, Repl, ReplDeps,
                        Changes);
      substituteForward(P, Uses, IS->elseBody(), 0, T, Repl, ReplDeps,
                        Changes);
      continue;
    }
    if (auto *DS = dyn_cast<DoStmt>(S)) {
      // A loop body re-executes: safe only if the body itself is
      // conflict-free (then every inner read still sees the same value).
      if (Conflicts(U))
        return;
      substituteForward(P, Uses, DS->body(), 0, T, Repl, ReplDeps, Changes);
      continue;
    }
    if (Conflicts(U))
      return;
  }
}

void forwardSubstituteIn(Program &P, const analysis::SymbolUses &Uses,
                         StmtList &Body, unsigned &Changes) {
  for (size_t I = 0; I < Body.size(); ++I) {
    Stmt *S = Body[I];
    if (auto *IS = dyn_cast<IfStmt>(S)) {
      forwardSubstituteIn(P, Uses, IS->thenBody(), Changes);
      forwardSubstituteIn(P, Uses, IS->elseBody(), Changes);
      continue;
    }
    if (auto *DS = dyn_cast<DoStmt>(S)) {
      forwardSubstituteIn(P, Uses, DS->body(), Changes);
      continue;
    }
    if (auto *WS = dyn_cast<WhileStmt>(S)) {
      forwardSubstituteIn(P, Uses, WS->body(), Changes);
      continue;
    }
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS || AS->arrayTarget())
      continue;
    const Symbol *T = AS->writtenSymbol();
    if (T->elementKind() != ScalarKind::Int)
      continue;
    analysis::UseSet Deps;
    analysis::SymbolUses::exprReads(AS->rhs(), Deps);
    if (Deps.reads(T))
      continue; // t = f(t) is not substitutable.
    substituteForward(P, Uses, Body, I + 1, T, AS->rhs(), Deps, Changes);
  }
}

} // namespace

unsigned iaa::xform::forwardSubstitute(Program &P) {
  analysis::SymbolUses Uses(P);
  unsigned Changes = 0;
  for (Procedure *Proc : P.procedures())
    forwardSubstituteIn(P, Uses, Proc->body(), Changes);
  P.relinkParents();
  return Changes;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

unsigned iaa::xform::eliminateDeadCode(Program &P) {
  unsigned Removed = 0;
  for (int Round = 0; Round < 3; ++Round) {
    // Scalars read anywhere (conditions, bounds, subscripts, RHS).
    std::set<const Symbol *> Read;
    P.forEachStmt([&](Stmt *S) {
      analysis::UseSet U;
      switch (S->kind()) {
      case StmtKind::Assign: {
        const auto *AS = cast<AssignStmt>(S);
        analysis::SymbolUses::exprReads(AS->rhs(), U);
        if (const mf::ArrayRef *T = AS->arrayTarget())
          for (const Expr *Sub : T->subscripts())
            analysis::SymbolUses::exprReads(Sub, U);
        break;
      }
      case StmtKind::If:
        analysis::SymbolUses::exprReads(cast<IfStmt>(S)->condition(), U);
        break;
      case StmtKind::Do: {
        const auto *DS = cast<DoStmt>(S);
        analysis::SymbolUses::exprReads(DS->lower(), U);
        analysis::SymbolUses::exprReads(DS->upper(), U);
        if (DS->step())
          analysis::SymbolUses::exprReads(DS->step(), U);
        break;
      }
      case StmtKind::While:
        analysis::SymbolUses::exprReads(cast<WhileStmt>(S)->condition(), U);
        break;
      case StmtKind::Call:
        break;
      }
      Read.insert(U.Reads.begin(), U.Reads.end());
    });

    unsigned Before = Removed;
    std::function<void(StmtList &)> Filter = [&](StmtList &Body) {
      StmtList Kept;
      for (Stmt *S : Body) {
        if (auto *IS = dyn_cast<IfStmt>(S)) {
          Filter(IS->thenBody());
          Filter(IS->elseBody());
        } else if (auto *DS = dyn_cast<DoStmt>(S)) {
          Filter(DS->body());
        } else if (auto *WS = dyn_cast<WhileStmt>(S)) {
          Filter(WS->body());
        } else if (auto *AS = dyn_cast<AssignStmt>(S)) {
          const Symbol *T = AS->writtenSymbol();
          if (!AS->arrayTarget() && !Read.count(T)) {
            ++Removed;
            continue; // Drop the dead assignment.
          }
        }
        Kept.push_back(S);
      }
      Body = std::move(Kept);
    };
    for (Procedure *Proc : P.procedures())
      Filter(Proc->body());
    if (Removed == Before)
      break;
  }
  P.relinkParents();
  return Removed;
}

//===----------------------------------------------------------------------===//
// Induction variable substitution (minimal form)
//===----------------------------------------------------------------------===//

unsigned iaa::xform::substituteInductions(Program &P) {
  unsigned Changes = 0;
  std::function<void(StmtList &)> Visit = [&](StmtList &Body) {
    for (size_t I = 0; I < Body.size(); ++I) {
      Stmt *S = Body[I];
      if (auto *IS = dyn_cast<IfStmt>(S)) {
        Visit(IS->thenBody());
        Visit(IS->elseBody());
        continue;
      }
      if (auto *WS = dyn_cast<WhileStmt>(S)) {
        Visit(WS->body());
        continue;
      }
      auto *DS = dyn_cast<DoStmt>(S);
      if (!DS)
        continue;
      Visit(DS->body());
      if (DS->body().empty() || I == 0 || (DS->step() != nullptr))
        continue;
      // Pattern: preceding `p = c0` and body-leading `p = p + c`, with no
      // other definition of p in the body.
      const auto *Init = dyn_cast<AssignStmt>(Body[I - 1]);
      const auto *Inc = dyn_cast<AssignStmt>(DS->body()[0]);
      if (!Init || !Inc || Init->arrayTarget() || Inc->arrayTarget())
        continue;
      const Symbol *Pvar = Inc->writtenSymbol();
      if (Init->writtenSymbol() != Pvar || Pvar == DS->indexVar())
        continue;
      sym::SymExpr C0 = sym::SymExpr::fromAst(Init->rhs());
      if (!C0.isConstant())
        continue;
      sym::SymExpr IncRhs = sym::SymExpr::fromAst(Inc->rhs());
      sym::SymExpr Delta = IncRhs - sym::SymExpr::var(Pvar);
      if (!Delta.isConstant() || IncRhs.coeffOfVar(Pvar) != 1)
        continue;
      // No other definition of p in the body.
      unsigned Defs = 0;
      Program::forEachStmtIn(DS->body(), [&](Stmt *Sub) {
        if (const auto *AS = dyn_cast<AssignStmt>(Sub))
          if (!AS->arrayTarget() && AS->writtenSymbol() == Pvar)
            ++Defs;
        if (const auto *Inner = dyn_cast<DoStmt>(Sub))
          if (Inner->indexVar() == Pvar)
            Defs += 2;
      });
      if (Defs != 1)
        continue;
      // p inside the body (after the increment) equals
      //   c0 + delta * (i - lo + 1).
      const Expr *IMinusLo = P.makeBinary(
          BinaryOp::Sub, P.makeVarRef(DS->indexVar()), DS->lower());
      const Expr *Iter = P.makeBinary(BinaryOp::Add, IMinusLo,
                                      P.makeIntLit(1));
      const Expr *Scaled = P.makeBinary(
          BinaryOp::Mul, P.makeIntLit(Delta.constValue()), Iter);
      const Expr *Closed = P.makeBinary(
          BinaryOp::Add, P.makeIntLit(C0.constValue()), Scaled);
      auto OnVar = [&](const VarRef *VR) -> const Expr * {
        return VR->symbol() == Pvar ? Closed : nullptr;
      };
      bool Rewrote = false;
      for (size_t K = 1; K < DS->body().size(); ++K) {
        StmtList One = {DS->body()[K]};
        Program::forEachStmtIn(One, [&](Stmt *Sub) {
          if (rewriteStmtReads(P, Sub, OnVar))
            Rewrote = true;
        });
      }
      if (Rewrote)
        ++Changes;
    }
  };
  for (Procedure *Proc : P.procedures())
    Visit(Proc->body());
  P.relinkParents();
  return Changes;
}
