//===- xform/Postpass.h - Annotated parallel source emission ----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "postpass" of the Polaris phase list (Fig. 15): Polaris emitted
/// transformed Fortran with parallel directives for the native back-end
/// compiler. This postpass renders the analyzed MF program with
/// OpenMP-style directive comments in front of every loop the pipeline
/// parallelized:
///
/// \code
///   !$iaa parallel do private(x, p) reduction(+:s)
///   dok: do k = 1, n
/// \endcode
///
/// The output re-parses as a valid MF program (directives are comments), so
/// it can feed any MF consumer; the directives document exactly the plan
/// the interpreter executes.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_XFORM_POSTPASS_H
#define IAA_XFORM_POSTPASS_H

#include "xform/Parallelizer.h"

#include <string>

namespace iaa {
namespace xform {

/// Renders \p P as MF source with `!$iaa parallel do` directives for every
/// loop whose plan in \p Result is parallel.
std::string emitAnnotatedSource(const mf::Program &P,
                                const PipelineResult &Result);

} // namespace xform
} // namespace iaa

#endif // IAA_XFORM_POSTPASS_H
