//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used to reproduce the compile-time measurements of
/// Table 2 and the execution-time breakdowns of Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_TIMER_H
#define IAA_SUPPORT_TIMER_H

#include <chrono>

namespace iaa {

/// A simple restartable wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Resets the start point to now.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates time over multiple start/stop intervals; used to attribute
/// pipeline time to the array property analysis (Table 2, column five).
class AccumulatingTimer {
public:
  /// Begins a new interval. Calling start() while already running banks the
  /// open interval first, so no time is silently discarded.
  void start() {
    if (Running)
      Total += Current.seconds();
    Current = Timer();
    Running = true;
  }

  void stop() {
    if (Running)
      Total += Current.seconds();
    Running = false;
  }

  double seconds() const { return Total + (Running ? Current.seconds() : 0); }
  void clear() { Total = 0; Running = false; }

private:
  Timer Current;
  double Total = 0;
  bool Running = false;
};

/// RAII helper that accumulates the lifetime of the scope into a timer.
class TimeRegion {
public:
  explicit TimeRegion(AccumulatingTimer &T) : T(T) { T.start(); }
  ~TimeRegion() { T.stop(); }

  TimeRegion(const TimeRegion &) = delete;
  TimeRegion &operator=(const TimeRegion &) = delete;

private:
  AccumulatingTimer &T;
};

} // namespace iaa

#endif // IAA_SUPPORT_TIMER_H
