//===- support/Trace.cpp - Hierarchical scoped tracing --------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Statistic.h"

#include <chrono>
#include <deque>
#include <fstream>
#include <mutex>

using namespace iaa;
using namespace iaa::trace;

#define IAA_STAT_GROUP "trace"
IAA_STAT(trace_dropped, "Trace events discarded by the buffer cap");

std::atomic<bool> iaa::trace::detail::Enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t DefaultMaxEvents = size_t(1) << 18;

struct Collector {
  std::mutex Mutex;
  std::deque<Event> Events;
  size_t MaxEvents = DefaultMaxEvents;
  size_t Dropped = 0;
  Clock::time_point Origin = Clock::now();
  uint32_t NextTid = 0;

  /// Appends under the buffer cap, discarding the oldest event when full.
  /// Caller must hold Mutex.
  void append(Event &&E) {
    if (Events.size() >= MaxEvents) {
      Events.pop_front();
      ++Dropped;
      ++trace_dropped;
    }
    Events.push_back(std::move(E));
  }
};

Collector &collector() {
  static Collector C;
  return C;
}

double nowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   collector().Origin)
      .count();
}

/// Dense thread ids: assigned once per thread on first traced span.
uint32_t currentTid() {
  thread_local uint32_t Tid = [] {
    Collector &C = collector();
    std::lock_guard<std::mutex> Lock(C.Mutex);
    return C.NextTid++;
  }();
  return Tid;
}

} // namespace

void iaa::trace::enable(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void iaa::trace::clear() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.Events.clear();
  C.Dropped = 0;
  C.Origin = Clock::now();
}

size_t iaa::trace::eventCount() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Events.size();
}

void iaa::trace::setMaxEvents(size_t Max) {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.MaxEvents = Max == 0 ? DefaultMaxEvents : Max;
  while (C.Events.size() > C.MaxEvents) {
    C.Events.pop_front();
    ++C.Dropped;
    ++trace_dropped;
  }
}

size_t iaa::trace::droppedCount() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Dropped;
}

std::vector<Event> iaa::trace::events() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return std::vector<Event>(C.Events.begin(), C.Events.end());
}

void iaa::trace::counter(const std::string &Name, double Value) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = "counter";
  E.Ph = 'C';
  E.TsMicros = nowMicros();
  E.Value = Value;
  E.Tid = currentTid();
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.append(std::move(E));
}

void TraceScope::begin(const char *N, const char *C) {
  Active = true;
  Name = N;
  Cat = C;
  (void)currentTid(); // Assign the tid before timing starts.
  StartMicros = nowMicros();
}

void TraceScope::end() {
  double End = nowMicros();
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsMicros = StartMicros;
  E.DurMicros = End - StartMicros;
  E.Tid = currentTid();
  E.Args = std::move(Args);
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.append(std::move(E));
}

std::string iaa::trace::json() {
  std::vector<Event> Evs = events();
  size_t Dropped = droppedCount();
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const Event &E : Evs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": " + json::str(E.Name) +
           ", \"cat\": " + json::str(E.Cat);
    if (E.Ph == 'C') {
      Out += ", \"ph\": \"C\", \"ts\": " + json::num(E.TsMicros) +
             ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid) +
             ", \"args\": {\"value\": " + json::num(E.Value) + "}";
    } else {
      Out += ", \"ph\": \"X\", \"ts\": " + json::num(E.TsMicros) +
             ", \"dur\": " + json::num(E.DurMicros) +
             ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
      if (!E.Args.empty()) {
        Out += ", \"args\": {";
        bool FirstArg = true;
        for (const auto &[K, V] : E.Args) {
          if (!FirstArg)
            Out += ", ";
          FirstArg = false;
          Out += json::str(K) + ": " + json::str(V);
        }
        Out += "}";
      }
    }
    Out += "}";
  }
  Out += "\n], \"droppedEvents\": " + std::to_string(Dropped) +
         ", \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool iaa::trace::writeJson(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}
