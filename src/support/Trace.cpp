//===- support/Trace.cpp - Hierarchical scoped tracing --------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

#include <chrono>
#include <fstream>
#include <mutex>

using namespace iaa;
using namespace iaa::trace;

std::atomic<bool> iaa::trace::detail::Enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

struct Collector {
  std::mutex Mutex;
  std::vector<Event> Events;
  Clock::time_point Origin = Clock::now();
  uint32_t NextTid = 0;
};

Collector &collector() {
  static Collector C;
  return C;
}

double nowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   collector().Origin)
      .count();
}

/// Dense thread ids: assigned once per thread on first traced span.
uint32_t currentTid() {
  thread_local uint32_t Tid = [] {
    Collector &C = collector();
    std::lock_guard<std::mutex> Lock(C.Mutex);
    return C.NextTid++;
  }();
  return Tid;
}

} // namespace

void iaa::trace::enable(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void iaa::trace::clear() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.Events.clear();
  C.Origin = Clock::now();
}

size_t iaa::trace::eventCount() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Events.size();
}

std::vector<Event> iaa::trace::events() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Events;
}

void TraceScope::begin(const char *N, const char *C) {
  Active = true;
  Name = N;
  Cat = C;
  (void)currentTid(); // Assign the tid before timing starts.
  StartMicros = nowMicros();
}

void TraceScope::end() {
  double End = nowMicros();
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsMicros = StartMicros;
  E.DurMicros = End - StartMicros;
  E.Tid = currentTid();
  E.Args = std::move(Args);
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  C.Events.push_back(std::move(E));
}

std::string iaa::trace::json() {
  std::vector<Event> Evs = events();
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const Event &E : Evs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": " + json::str(E.Name) +
           ", \"cat\": " + json::str(E.Cat) +
           ", \"ph\": \"X\", \"ts\": " + json::num(E.TsMicros) +
           ", \"dur\": " + json::num(E.DurMicros) +
           ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
    if (!E.Args.empty()) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[K, V] : E.Args) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += json::str(K) + ": " + json::str(V);
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool iaa::trace::writeJson(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}
