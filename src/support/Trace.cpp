//===- support/Trace.cpp - Hierarchical scoped tracing --------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Statistic.h"

#include <chrono>
#include <deque>
#include <fstream>
#include <mutex>

using namespace iaa;
using namespace iaa::trace;

#define IAA_STAT_GROUP "trace"
IAA_STAT(trace_dropped, "Trace events discarded by the buffer cap");

std::atomic<bool> iaa::trace::detail::Enabled{false};
thread_local Buffer *iaa::trace::detail::TlsBuffer = nullptr;

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t DefaultMaxEvents = size_t(1) << 18;

/// Dense thread ids: assigned once per thread on first traced span, from a
/// process-wide counter so ids stay unique across per-session buffers.
uint32_t currentTid() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

} // namespace

struct Buffer::Impl {
  mutable std::mutex Mutex;
  std::deque<Event> Events;
  size_t MaxEvents = DefaultMaxEvents;
  size_t Dropped = 0;
  Clock::time_point Origin = Clock::now();
};

Buffer::Buffer() : I(new Impl) {}
Buffer::~Buffer() { delete I; }

void Buffer::append(Event E) {
  bool DroppedOne = false;
  {
    std::lock_guard<std::mutex> Lock(I->Mutex);
    if (I->Events.size() >= I->MaxEvents) {
      I->Events.pop_front();
      ++I->Dropped;
      DroppedOne = true;
    }
    I->Events.push_back(std::move(E));
  }
  if (DroppedOne)
    ++trace_dropped;
}

void Buffer::clear() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Events.clear();
  I->Dropped = 0;
  I->Origin = Clock::now();
}

size_t Buffer::eventCount() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Events.size();
}

void Buffer::setMaxEvents(size_t Max) {
  size_t DroppedNow = 0;
  {
    std::lock_guard<std::mutex> Lock(I->Mutex);
    I->MaxEvents = Max == 0 ? DefaultMaxEvents : Max;
    while (I->Events.size() > I->MaxEvents) {
      I->Events.pop_front();
      ++I->Dropped;
      ++DroppedNow;
    }
  }
  if (DroppedNow)
    trace_dropped += DroppedNow;
}

size_t Buffer::droppedCount() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Dropped;
}

double Buffer::nowMicros() const {
  return std::chrono::duration<double, std::micro>(Clock::now() - I->Origin)
      .count();
}

std::vector<Event> Buffer::events() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return std::vector<Event>(I->Events.begin(), I->Events.end());
}

std::string Buffer::json() const {
  std::vector<Event> Evs = events();
  size_t Dropped = droppedCount();
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const Event &E : Evs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": " + json::str(E.Name) +
           ", \"cat\": " + json::str(E.Cat);
    if (E.Ph == 'C') {
      Out += ", \"ph\": \"C\", \"ts\": " + json::num(E.TsMicros) +
             ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid) +
             ", \"args\": {\"value\": " + json::num(E.Value) + "}";
    } else {
      Out += ", \"ph\": \"X\", \"ts\": " + json::num(E.TsMicros) +
             ", \"dur\": " + json::num(E.DurMicros) +
             ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
      if (!E.Args.empty()) {
        Out += ", \"args\": {";
        bool FirstArg = true;
        for (const auto &[K, V] : E.Args) {
          if (!FirstArg)
            Out += ", ";
          FirstArg = false;
          Out += json::str(K) + ": " + json::str(V);
        }
        Out += "}";
      }
    }
    Out += "}";
  }
  Out += "\n], \"droppedEvents\": " + std::to_string(Dropped) +
         ", \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool Buffer::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}

namespace {

Buffer &globalBuffer() {
  static Buffer B;
  return B;
}

/// The buffer this thread's spans land in: the installed per-session one,
/// else the process-wide one.
Buffer &targetBuffer() {
  return detail::TlsBuffer ? *detail::TlsBuffer : globalBuffer();
}

} // namespace

void iaa::trace::enable(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void iaa::trace::clear() { targetBuffer().clear(); }

size_t iaa::trace::eventCount() { return targetBuffer().eventCount(); }

void iaa::trace::setMaxEvents(size_t Max) { targetBuffer().setMaxEvents(Max); }

size_t iaa::trace::droppedCount() { return targetBuffer().droppedCount(); }

std::vector<Event> iaa::trace::events() { return targetBuffer().events(); }

void iaa::trace::counter(const std::string &Name, double Value) {
  if (!enabled())
    return;
  Buffer &B = targetBuffer();
  Event E;
  E.Name = Name;
  E.Cat = "counter";
  E.Ph = 'C';
  E.TsMicros = B.nowMicros();
  E.Value = Value;
  E.Tid = currentTid();
  B.append(std::move(E));
}

void TraceScope::begin(const char *N, const char *C) {
  Active = true;
  Name = N;
  Cat = C;
  (void)currentTid(); // Assign the tid before timing starts.
  StartMicros = targetBuffer().nowMicros();
}

void TraceScope::end() {
  Buffer &B = targetBuffer();
  double End = B.nowMicros();
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsMicros = StartMicros;
  E.DurMicros = End - StartMicros;
  E.Tid = currentTid();
  E.Args = std::move(Args);
  B.append(std::move(E));
}

std::string iaa::trace::json() { return targetBuffer().json(); }

bool iaa::trace::writeJson(const std::string &Path) {
  return targetBuffer().writeJson(Path);
}
