//===- support/Saturating.h - Saturating integer arithmetic -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-clamping int64 arithmetic for static work estimates. Body
/// weights multiply by 16 per loop-nesting level, so a huge trip count times
/// a deeply nested body can overflow a plain int64 multiply — which is UB
/// and, in practice, wraps negative and defeats thresholds like the
/// parallel-loop profitability guard. Saturating to the int64 extremes
/// keeps every comparison against a threshold meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_SATURATING_H
#define IAA_SUPPORT_SATURATING_H

#include <cstdint>
#include <limits>

namespace iaa {

/// A * B, clamped to [INT64_MIN, INT64_MAX] on overflow.
inline int64_t satMul(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_mul_overflow(A, B, &R))
    return R;
  return (A < 0) != (B < 0) ? std::numeric_limits<int64_t>::min()
                            : std::numeric_limits<int64_t>::max();
}

/// A + B, clamped to [INT64_MIN, INT64_MAX] on overflow.
inline int64_t satAdd(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_add_overflow(A, B, &R))
    return R;
  return A < 0 ? std::numeric_limits<int64_t>::min()
               : std::numeric_limits<int64_t>::max();
}

} // namespace iaa

#endif // IAA_SUPPORT_SATURATING_H
