//===- support/Remarks.h - Structured optimization remarks ------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured optimization remarks in the LLVM opt-remarks mould: one record
/// per analyzed loop stating what the pipeline decided (parallelized or
/// not), *why*, and the evidence (dependence-test outcomes, properties
/// verified, privatized arrays, recognized reductions). Remarks back the
/// old WhyNot string — human-readable rendering for terminals, JSONL for
/// machine consumption (`mfpar --remarks=out.jsonl`).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_REMARKS_H
#define IAA_SUPPORT_REMARKS_H

#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace iaa {

/// One structured remark about one loop.
struct Remark {
  enum class Kind {
    Parallelized, ///< The loop was marked parallel.
    Missed,       ///< The loop stayed serial; Reason says why.
    Audit,        ///< Plan-auditor verdict for a parallel-marked loop.
    RuntimeCheck, ///< Statically serial, parallel conditional on runtime
                  ///< checks; Evidence lists the obligations.
    FaultReplay,  ///< A parallel loop trapped a worker fault, rolled its
                  ///< transaction back, and was replayed serially; Evidence
                  ///< records the fault and whether the replay recovered.
    Recurrence,   ///< Parallel thanks to recurrence facts about an index
                  ///< array's building loop; Evidence lists the runtime
                  ///< inspections the promotion deleted.
  };

  /// Loop label ("<unlabeled>" when the source gave none).
  std::string Loop;
  Kind K = Kind::Missed;
  /// One sentence: why the decision fell this way.
  std::string Reason;
  /// Supporting facts as ordered key/value pairs, e.g.
  /// {"dep:ia", "independent [offset-length] pptr:CFD,iblen:CFB"}.
  std::vector<std::pair<std::string, std::string>> Evidence;

  /// Human-readable multi-line rendering.
  std::string str() const;
  /// One JSON object (single line, no trailing newline) for JSONL output.
  std::string jsonLine() const;
};

const char *remarkKindName(Remark::Kind K);

/// Renders \p Remarks for a terminal.
std::string remarksText(const std::vector<Remark> &Remarks);

/// Renders \p Remarks as JSONL (one record per line).
std::string remarksJsonl(const std::vector<Remark> &Remarks);

/// Accumulates remarks from the phases of one request (pipeline, audit,
/// fault replay) into a single ordered stream. Each session/request owns
/// its own sink, so a multi-tenant process never interleaves one tenant's
/// remarks into another's report. Thread-safe.
class RemarkSink {
public:
  void add(Remark R);
  void add(const std::vector<Remark> &Rs);

  size_t size() const;

  /// Snapshot of everything collected so far, in arrival order.
  std::vector<Remark> all() const;

  /// Moves the collected remarks out, leaving the sink empty.
  std::vector<Remark> take();

  /// remarksText over the collected remarks.
  std::string text() const;

  /// remarksJsonl over the collected remarks.
  std::string jsonl() const;

private:
  mutable std::mutex M;
  std::vector<Remark> Items;
};

} // namespace iaa

#endif // IAA_SUPPORT_REMARKS_H
