//===- support/Statistic.h - Named global counters --------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style named statistics: cheap, thread-safe counters registered in a
/// global registry and dumpable as a table or JSON. A translation unit
/// defines its group once and declares counters at namespace scope:
///
/// \code
///   #define IAA_STAT_GROUP "bdfs"
///   IAA_STAT(bdfs_nodes_visited, "Nodes visited by the bounded DFS");
///   ...
///   ++bdfs_nodes_visited;
/// \endcode
///
/// Increments are relaxed atomics, safe from interpreter worker threads.
/// stat::resetAll() zeroes every counter so per-pipeline-run deltas can be
/// measured (the mfpar --stats flag and the observability tests rely on
/// this).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_STATISTIC_H
#define IAA_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace iaa {
namespace stat {

/// One named counter. Construction registers it globally; instances must
/// have static storage duration (the registry keeps raw pointers).
class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Desc);

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }

  uint64_t value() const { return Count.load(std::memory_order_relaxed); }
  void reset() { Count.store(0, std::memory_order_relaxed); }

  Statistic &operator++() {
    Count.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Count.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }

private:
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Count{0};
};

/// Every registered statistic, in registration order.
const std::vector<Statistic *> &all();

/// The statistic named \p Name (unique across groups by convention), or
/// null.
Statistic *find(const std::string &Name);

/// Zeroes every registered counter.
void resetAll();

/// Human-readable table of all nonzero counters (all counters when
/// \p IncludeZero), sorted by (group, name) so dumps diff cleanly.
std::string table(bool IncludeZero = false);

/// One JSON object {"group.name": value, ...} over all counters, sorted by
/// (group, name).
std::string json();

} // namespace stat
} // namespace iaa

/// Declares a namespace-scope counter registered under IAA_STAT_GROUP.
#define IAA_STAT(VAR, DESC)                                                    \
  static ::iaa::stat::Statistic VAR(IAA_STAT_GROUP, #VAR, DESC)

#endif // IAA_SUPPORT_STATISTIC_H
