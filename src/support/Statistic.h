//===- support/Statistic.h - Named global counters --------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style named statistics: cheap, thread-safe counters registered in a
/// global registry and dumpable as a table or JSON. A translation unit
/// defines its group once and declares counters at namespace scope:
///
/// \code
///   #define IAA_STAT_GROUP "bdfs"
///   IAA_STAT(bdfs_nodes_visited, "Nodes visited by the bounded DFS");
///   ...
///   ++bdfs_nodes_visited;
/// \endcode
///
/// Increments are relaxed atomics, safe from interpreter worker threads.
/// stat::resetAll() zeroes every counter so per-pipeline-run deltas can be
/// measured (the mfpar --stats flag and the observability tests rely on
/// this).
///
/// Multi-tenant processes (the mfpard daemon) cannot share one registry of
/// process-wide counters: request A's inspections would show up in request
/// B's report. A stat::Collector is the per-session overlay — installed
/// thread-locally via CollectorScope, it additionally receives every
/// increment made on the installing thread (and on worker threads the
/// WorkerPool propagates it to), so a session can report exactly the
/// counter deltas its own requests produced while the global registry keeps
/// its process-wide totals.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_STATISTIC_H
#define IAA_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace iaa {
namespace stat {

class Statistic;

/// Per-session counter overlay: accumulates the deltas of every increment
/// made while the collector is installed (CollectorScope / currentCollector)
/// on the incrementing thread. Thread-safe — one session's pool workers all
/// funnel into the same collector.
class Collector {
public:
  /// Adds \p N to this collector's delta for \p S.
  void note(const Statistic *S, uint64_t N);

  /// This collector's delta for the statistic named \p Name (0 when never
  /// incremented here).
  uint64_t value(const std::string &Name) const;

  /// All nonzero deltas as "group.name" -> delta, sorted.
  std::map<std::string, uint64_t> snapshot() const;

  /// One JSON object {"group.name": delta, ...} over the nonzero deltas.
  std::string json() const;

  /// Drops every delta.
  void clear();

private:
  mutable std::mutex M;
  std::unordered_map<const Statistic *, uint64_t> Counts;
};

namespace detail {
/// The collector receiving this thread's increments, or null. Managed by
/// CollectorScope; read inline on every increment (one TLS load).
extern thread_local Collector *TlsCollector;
} // namespace detail

/// The collector installed on this thread, or null.
inline Collector *currentCollector() { return detail::TlsCollector; }

/// RAII installation of a per-session collector on the current thread.
/// Nests: the previous collector is restored on destruction. Installing
/// null is a no-op overlay (increments go only to the global registry),
/// which lets context propagation be unconditional.
class CollectorScope {
public:
  explicit CollectorScope(Collector *C) : Prev(detail::TlsCollector) {
    detail::TlsCollector = C;
  }
  ~CollectorScope() { detail::TlsCollector = Prev; }

  CollectorScope(const CollectorScope &) = delete;
  CollectorScope &operator=(const CollectorScope &) = delete;

private:
  Collector *Prev;
};

/// One named counter. Construction registers it globally; instances must
/// have static storage duration (the registry keeps raw pointers).
class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Desc);

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }

  uint64_t value() const { return Count.load(std::memory_order_relaxed); }
  void reset() { Count.store(0, std::memory_order_relaxed); }

  Statistic &operator++() { return *this += 1; }
  Statistic &operator+=(uint64_t N) {
    Count.fetch_add(N, std::memory_order_relaxed);
    if (Collector *C = detail::TlsCollector)
      C->note(this, N);
    return *this;
  }

private:
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Count{0};
};

/// Every registered statistic, in registration order.
const std::vector<Statistic *> &all();

/// The statistic named \p Name (unique across groups by convention), or
/// null.
Statistic *find(const std::string &Name);

/// Zeroes every registered counter.
void resetAll();

/// Human-readable table of all nonzero counters (all counters when
/// \p IncludeZero), sorted by (group, name) so dumps diff cleanly.
std::string table(bool IncludeZero = false);

/// One JSON object {"group.name": value, ...} over all counters, sorted by
/// (group, name).
std::string json();

} // namespace stat
} // namespace iaa

/// Declares a namespace-scope counter registered under IAA_STAT_GROUP.
#define IAA_STAT(VAR, DESC)                                                    \
  static ::iaa::stat::Statistic VAR(IAA_STAT_GROUP, #VAR, DESC)

#endif // IAA_SUPPORT_STATISTIC_H
