//===- support/Trace.h - Hierarchical scoped tracing ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide tracer emitting Chrome trace-event JSON (the format
/// chrome://tracing and Perfetto load). Instrumentation sites open RAII
/// TraceScope spans:
///
/// \code
///   trace::TraceScope Span("dep-test", "deptest");
///   Span.arg("loop", L->label());
///   ... // span closes at scope exit
/// \endcode
///
/// Tracing is off by default and every span begins with a single relaxed
/// atomic load, so instrumented hot paths (the interpreter, the property
/// solver) pay one predictable branch when disabled — the bench JSON
/// tracks that interpreter timings are unchanged vs. the untraced baseline.
///
/// Spans record wall-clock microseconds from a common origin plus a small
/// dense thread id, so fork/join parallel loops render as per-thread
/// swimlanes exposing work imbalance and fork/join overhead.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_TRACE_H
#define IAA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace iaa {
namespace trace {

namespace detail {
extern std::atomic<bool> Enabled;
} // namespace detail

/// True when span collection is on. Inline and relaxed: this is the only
/// cost instrumented code pays when tracing is disabled.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off. Enabling does not clear prior events.
void enable(bool On);

/// Drops all collected events (and resets the time origin and the dropped
/// count).
void clear();

/// Number of events currently buffered.
size_t eventCount();

/// Caps the in-memory event buffer: once full, the oldest events are
/// discarded (counted by droppedCount() and the trace_dropped statistic)
/// so long profiled runs cannot grow memory without limit. The default is
/// 1<<18 events; \p Max = 0 restores it.
void setMaxEvents(size_t Max);

/// Events discarded by the buffer cap since the last clear().
size_t droppedCount();

/// One completed span ("ph":"X") or counter sample ("ph":"C") in the
/// trace-event format.
struct Event {
  std::string Name;
  std::string Cat;
  char Ph = 'X';        ///< 'X' duration span, 'C' counter sample.
  double TsMicros = 0;  ///< Start, microseconds from the trace origin.
  double DurMicros = 0; ///< Duration in microseconds (spans only).
  double Value = 0;     ///< Counter value ('C' events only).
  uint32_t Tid = 0;     ///< Dense per-process thread id.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Records a counter sample ("ph":"C"): \p Name becomes a counter track in
/// the viewer with \p Value at the current timestamp. No-op when tracing
/// is disabled.
void counter(const std::string &Name, double Value);

/// Snapshot of the events collected so far.
std::vector<Event> events();

/// The whole trace as a Chrome trace-event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
std::string json();

/// Writes json() to \p Path; false on I/O failure.
bool writeJson(const std::string &Path);

/// RAII span. Inactive (a no-op) when tracing is disabled at construction.
class TraceScope {
public:
  TraceScope(const char *Name, const char *Cat) {
    if (enabled())
      begin(Name, Cat);
  }
  ~TraceScope() {
    if (Active)
      end();
  }

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  bool active() const { return Active; }

  /// Attaches a key/value annotation (e.g. the property being verified and
  /// its verdict). No-op when inactive.
  void arg(const std::string &Key, const std::string &Val) {
    if (Active)
      Args.emplace_back(Key, Val);
  }

private:
  void begin(const char *Name, const char *Cat);
  void end();

  bool Active = false;
  const char *Name = nullptr;
  const char *Cat = nullptr;
  double StartMicros = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

} // namespace trace
} // namespace iaa

#endif // IAA_SUPPORT_TRACE_H
