//===- support/Trace.h - Hierarchical scoped tracing ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide tracer emitting Chrome trace-event JSON (the format
/// chrome://tracing and Perfetto load). Instrumentation sites open RAII
/// TraceScope spans:
///
/// \code
///   trace::TraceScope Span("dep-test", "deptest");
///   Span.arg("loop", L->label());
///   ... // span closes at scope exit
/// \endcode
///
/// Tracing is off by default and every span begins with a single relaxed
/// atomic load, so instrumented hot paths (the interpreter, the property
/// solver) pay one predictable branch when disabled — the bench JSON
/// tracks that interpreter timings are unchanged vs. the untraced baseline.
///
/// Spans record wall-clock microseconds from a common origin plus a small
/// dense thread id, so fork/join parallel loops render as per-thread
/// swimlanes exposing work imbalance and fork/join overhead.
///
/// Events land in a trace::Buffer. One process-wide buffer backs the free
/// functions below (the mfpar --trace flag); a multi-tenant process (the
/// mfpard daemon) instead installs a per-session Buffer thread-locally via
/// BufferScope so concurrent requests never interleave spans — the
/// WorkerPool propagates the installing thread's buffer to its workers for
/// the duration of each parallel region.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_TRACE_H
#define IAA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace iaa {
namespace trace {

class Buffer;

namespace detail {
extern std::atomic<bool> Enabled;
/// The buffer receiving this thread's spans, or null for the process-wide
/// one. Managed by BufferScope.
extern thread_local Buffer *TlsBuffer;
} // namespace detail

/// The per-session buffer installed on this thread, or null when spans go
/// to the process-wide buffer.
inline Buffer *currentBuffer() { return detail::TlsBuffer; }

/// True when span collection is on: either globally (trace::enable) or
/// because a per-session buffer is installed on this thread. One relaxed
/// atomic load plus one TLS load — still the only cost instrumented code
/// pays when tracing is disabled.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed) ||
         detail::TlsBuffer != nullptr;
}

/// Turns collection on or off. Enabling does not clear prior events.
void enable(bool On);

/// Drops all collected events (and resets the time origin and the dropped
/// count).
void clear();

/// Number of events currently buffered.
size_t eventCount();

/// Caps the in-memory event buffer: once full, the oldest events are
/// discarded (counted by droppedCount() and the trace_dropped statistic)
/// so long profiled runs cannot grow memory without limit. The default is
/// 1<<18 events; \p Max = 0 restores it.
void setMaxEvents(size_t Max);

/// Events discarded by the buffer cap since the last clear().
size_t droppedCount();

/// One completed span ("ph":"X") or counter sample ("ph":"C") in the
/// trace-event format.
struct Event {
  std::string Name;
  std::string Cat;
  char Ph = 'X';        ///< 'X' duration span, 'C' counter sample.
  double TsMicros = 0;  ///< Start, microseconds from the trace origin.
  double DurMicros = 0; ///< Duration in microseconds (spans only).
  double Value = 0;     ///< Counter value ('C' events only).
  uint32_t Tid = 0;     ///< Dense per-process thread id.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Records a counter sample ("ph":"C"): \p Name becomes a counter track in
/// the viewer with \p Value at the current timestamp. No-op when tracing
/// is disabled.
void counter(const std::string &Name, double Value);

/// Snapshot of the events collected so far.
std::vector<Event> events();

/// The whole trace as a Chrome trace-event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
std::string json();

/// Writes json() to \p Path; false on I/O failure.
bool writeJson(const std::string &Path);

/// One span buffer: a bounded deque of events with its own time origin and
/// drop counter. The free functions above operate on the current thread's
/// buffer (the process-wide instance when none is installed); sessions own
/// private instances and install them with BufferScope. All methods are
/// thread-safe.
class Buffer {
public:
  Buffer();
  ~Buffer();

  Buffer(const Buffer &) = delete;
  Buffer &operator=(const Buffer &) = delete;

  /// Appends under the buffer cap, discarding the oldest event when full
  /// (counted by droppedCount() and the trace_dropped statistic).
  void append(Event E);

  /// Drops all events and resets the time origin and the dropped count.
  void clear();

  size_t eventCount() const;

  /// Caps the buffer; \p Max = 0 restores the default (1<<18 events).
  void setMaxEvents(size_t Max);

  size_t droppedCount() const;

  /// Microseconds since this buffer's time origin.
  double nowMicros() const;

  std::vector<Event> events() const;

  /// Chrome trace-event JSON document over this buffer's events.
  std::string json() const;

  /// Writes json() to \p Path; false on I/O failure.
  bool writeJson(const std::string &Path) const;

private:
  struct Impl;
  Impl *I;
};

/// RAII installation of a per-session buffer on the current thread. Nests;
/// installing null routes spans back to the process-wide buffer, which lets
/// context propagation be unconditional.
class BufferScope {
public:
  explicit BufferScope(Buffer *B) : Prev(detail::TlsBuffer) {
    detail::TlsBuffer = B;
  }
  ~BufferScope() { detail::TlsBuffer = Prev; }

  BufferScope(const BufferScope &) = delete;
  BufferScope &operator=(const BufferScope &) = delete;

private:
  Buffer *Prev;
};

/// RAII span. Inactive (a no-op) when tracing is disabled at construction.
class TraceScope {
public:
  TraceScope(const char *Name, const char *Cat) {
    if (enabled())
      begin(Name, Cat);
  }
  ~TraceScope() {
    if (Active)
      end();
  }

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  bool active() const { return Active; }

  /// Attaches a key/value annotation (e.g. the property being verified and
  /// its verdict). No-op when inactive.
  void arg(const std::string &Key, const std::string &Val) {
    if (Active)
      Args.emplace_back(Key, Val);
  }

private:
  void begin(const char *Name, const char *Cat);
  void end();

  bool Active = false;
  const char *Name = nullptr;
  const char *Cat = nullptr;
  double StartMicros = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

} // namespace trace
} // namespace iaa

#endif // IAA_SUPPORT_TRACE_H
