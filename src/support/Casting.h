//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free reimplementation of the LLVM casting templates
/// (isa<>, cast<>, dyn_cast<>). Class hierarchies opt in by providing a
/// discriminator via getKind() and a static classof(const Base *).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_CASTING_H
#define IAA_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace iaa {

/// Returns true if \p Val is an instance of the class \p To (or a subclass),
/// as reported by To::classof. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is an instance of any of the listed classes.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variant of isa<>.
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Null-tolerant variant of dyn_cast<>.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace iaa

#endif // IAA_SUPPORT_CASTING_H
