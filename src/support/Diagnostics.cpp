//===- support/Diagnostics.cpp - Error reporting implementation ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace iaa;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + kindName(Kind) + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
