//===- support/Diagnostics.cpp - Error reporting implementation ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace iaa;

const char *iaa::diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  const std::string Where = Range.isValid() ? Range.str() : Loc.str();
  return Where + ": " + diagKindName(Kind) + ": " + Message;
}

std::optional<DiagKind> DiagnosticEngine::maxSeverity() const {
  std::optional<DiagKind> Worst;
  for (const Diagnostic &D : Diags)
    if (!Worst || diagSeverityRank(D.Kind) < diagSeverityRank(*Worst))
      Worst = D.Kind;
  return Worst;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
