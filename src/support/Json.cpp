//===- support/Json.cpp - Minimal JSON writing and parsing ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace iaa;
using namespace iaa::json;

std::string iaa::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string iaa::json::num(double V) {
  if (!std::isfinite(V))
    return "0";
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::abs(V) < 1e15)
    return std::to_string(static_cast<long long>(V));
  // Locale-independent rendering: snprintf("%g") honors LC_NUMERIC, and a
  // comma decimal point (de_DE et al.) would corrupt every BENCH_*.json the
  // moment the host process touches setlocale(). to_chars is specified to
  // ignore the locale.
#if defined(__cpp_lib_to_chars)
  char Buf[40];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V,
                                 std::chars_format::general, 9);
  if (Ec == std::errc())
    return std::string(Buf, End);
#endif
  // Fallback for toolchains without FP to_chars: print, then undo any
  // locale decimal separator by hand.
  char Buf2[40];
  std::snprintf(Buf2, sizeof(Buf2), "%.9g", V);
  std::string Out = Buf2;
  std::replace(Out.begin(), Out.end(), ',', '.');
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::optional<Value> parseDocument() {
    std::optional<Value> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return std::nullopt; // Trailing garbage.
    return V;
  }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return std::nullopt; // Raw control character.
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/'; break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        // The emitters only produce \u escapes for ASCII control bytes, so
        // a one-byte decode suffices; other code points pass through UTF-8
        // unescaped.
        Out += static_cast<char>(Code & 0xFF);
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // Unterminated.
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      Value V;
      V.K = Value::Kind::String;
      V.S = std::move(*S);
      return V;
    }
    if (literal("true")) {
      Value V;
      V.K = Value::Kind::Bool;
      V.B = true;
      return V;
    }
    if (literal("false")) {
      Value V;
      V.K = Value::Kind::Bool;
      return V;
    }
    if (literal("null"))
      return Value{};
    return parseNumber();
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t Digits = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Digits)
      return std::nullopt;
    // from_chars, not strtod: strtod reads LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' of "1.5" and reject (or
    // misread) every number this library itself wrote.
    double D = 0;
#if defined(__cpp_lib_to_chars)
    auto [End, Ec] = std::from_chars(Text.data() + Start, Text.data() + Pos, D);
    if (Ec != std::errc() || End != Text.data() + Pos)
      return std::nullopt;
#else
    std::string Num = Text.substr(Start, Pos - Start);
    // Locale-proof fallback: route through the decimal separator strtod
    // expects right now.
    std::lconv *Lc = std::localeconv();
    if (Lc && Lc->decimal_point && Lc->decimal_point[0] != '.')
      std::replace(Num.begin(), Num.end(), '.', Lc->decimal_point[0]);
    char *NumEnd = nullptr;
    D = std::strtod(Num.c_str(), &NumEnd);
    if (NumEnd != Num.c_str() + Num.size())
      return std::nullopt;
#endif
    Value V;
    V.K = Value::Kind::Number;
    V.N = D;
    return V;
  }

  std::optional<Value> parseArray() {
    if (!consume('['))
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Array;
    skipWs();
    if (consume(']'))
      return V;
    while (true) {
      std::optional<Value> Elem = parseValue();
      if (!Elem)
        return std::nullopt;
      V.Elems.push_back(std::move(*Elem));
      if (consume(']'))
        return V;
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::optional<Value> parseObject() {
    if (!consume('{'))
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Object;
    skipWs();
    if (consume('}'))
      return V;
    while (true) {
      skipWs();
      std::optional<std::string> Key = parseString();
      if (!Key || !consume(':'))
        return std::nullopt;
      std::optional<Value> Member = parseValue();
      if (!Member)
        return std::nullopt;
      V.Members[*Key] = std::move(*Member);
      if (consume('}'))
        return V;
      if (!consume(','))
        return std::nullopt;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

std::optional<Value> iaa::json::parse(const std::string &Text) {
  return Parser(Text).parseDocument();
}
