//===- support/Json.cpp - Minimal JSON writing and parsing ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace iaa;
using namespace iaa::json;

std::string iaa::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string iaa::json::num(double V) {
  if (!std::isfinite(V))
    return "0";
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::abs(V) < 1e15)
    return std::to_string(static_cast<long long>(V));
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::optional<Value> parseDocument() {
    std::optional<Value> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return std::nullopt; // Trailing garbage.
    return V;
  }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return std::nullopt; // Raw control character.
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/'; break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        // The emitters only produce \u escapes for ASCII control bytes, so
        // a one-byte decode suffices; other code points pass through UTF-8
        // unescaped.
        Out += static_cast<char>(Code & 0xFF);
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // Unterminated.
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      Value V;
      V.K = Value::Kind::String;
      V.S = std::move(*S);
      return V;
    }
    if (literal("true")) {
      Value V;
      V.K = Value::Kind::Bool;
      V.B = true;
      return V;
    }
    if (literal("false")) {
      Value V;
      V.K = Value::Kind::Bool;
      return V;
    }
    if (literal("null"))
      return Value{};
    return parseNumber();
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t Digits = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Digits)
      return std::nullopt;
    char *End = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Number;
    V.N = D;
    return V;
  }

  std::optional<Value> parseArray() {
    if (!consume('['))
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Array;
    skipWs();
    if (consume(']'))
      return V;
    while (true) {
      std::optional<Value> Elem = parseValue();
      if (!Elem)
        return std::nullopt;
      V.Elems.push_back(std::move(*Elem));
      if (consume(']'))
        return V;
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::optional<Value> parseObject() {
    if (!consume('{'))
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Object;
    skipWs();
    if (consume('}'))
      return V;
    while (true) {
      skipWs();
      std::optional<std::string> Key = parseString();
      if (!Key || !consume(':'))
        return std::nullopt;
      std::optional<Value> Member = parseValue();
      if (!Member)
        return std::nullopt;
      V.Members[*Key] = std::move(*Member);
      if (consume('}'))
        return V;
      if (!consume(','))
        return std::nullopt;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

std::optional<Value> iaa::json::parse(const std::string &Text) {
  return Parser(Text).parseDocument();
}
