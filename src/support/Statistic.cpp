//===- support/Statistic.cpp - Named global counters ----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

using namespace iaa;
using namespace iaa::stat;

namespace {

/// Function-local statics sidestep static-initialization-order issues:
/// Statistic constructors run during static init of arbitrary TUs.
std::vector<Statistic *> &registry() {
  static std::vector<Statistic *> R;
  return R;
}

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

/// Registration order depends on TU link order and static-init sequencing,
/// so dumps sort by (group, name) to diff cleanly across runs and builds.
/// Caller must hold the registry mutex.
std::vector<Statistic *> sortedRegistry() {
  std::vector<Statistic *> Sorted = registry();
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Statistic *A, const Statistic *B) {
              if (int C = std::strcmp(A->group(), B->group()))
                return C < 0;
              return std::strcmp(A->name(), B->name()) < 0;
            });
  return Sorted;
}

} // namespace

thread_local Collector *iaa::stat::detail::TlsCollector = nullptr;

void Collector::note(const Statistic *S, uint64_t N) {
  std::lock_guard<std::mutex> Lock(M);
  Counts[S] += N;
}

uint64_t Collector::value(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[S, N] : Counts)
    if (Name == S->name())
      return N;
  return 0;
}

std::map<std::string, uint64_t> Collector::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, uint64_t> Out;
  for (const auto &[S, N] : Counts)
    if (N != 0)
      Out[std::string(S->group()) + "." + S->name()] = N;
  return Out;
}

std::string Collector::json() const {
  std::map<std::string, uint64_t> Snap = snapshot();
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, N] : Snap) {
    if (!First)
      Out += ",";
    First = false;
    Out += json::str(Name) + ":" + std::to_string(N);
  }
  Out += "}";
  return Out;
}

void Collector::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Counts.clear();
}

Statistic::Statistic(const char *Group, const char *Name, const char *Desc)
    : Group(Group), Name(Name), Desc(Desc) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().push_back(this);
}

const std::vector<Statistic *> &iaa::stat::all() { return registry(); }

Statistic *iaa::stat::find(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (Statistic *S : registry())
    if (Name == S->name())
      return S;
  return nullptr;
}

void iaa::stat::resetAll() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (Statistic *S : registry())
    S->reset();
}

std::string iaa::stat::table(bool IncludeZero) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  std::string Out = "=== Statistics ===\n";
  for (const Statistic *S : sortedRegistry()) {
    if (!IncludeZero && S->value() == 0)
      continue;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "%12llu %-10s %-32s %s\n",
                  static_cast<unsigned long long>(S->value()), S->group(),
                  S->name(), S->desc());
    Out += Buf;
  }
  return Out;
}

std::string iaa::stat::json() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  std::string Out = "{";
  bool First = true;
  for (const Statistic *S : sortedRegistry()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  " +
           json::str(std::string(S->group()) + "." + S->name()) + ": " +
           std::to_string(S->value());
  }
  Out += "\n}";
  return Out;
}
