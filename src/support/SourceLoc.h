//===- support/SourceLoc.h - Source locations for MF programs ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column locations used by the MF front end for diagnostics and by the
/// analyses to report which statement a result refers to.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_SOURCELOC_H
#define IAA_SUPPORT_SOURCELOC_H

#include <string>

namespace iaa {

/// A 1-based line/column position in an MF source buffer. Line 0 denotes an
/// unknown (synthesized) location.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// A half-open span of source positions, for diagnostics that underline a
/// whole construct rather than one token. An invalid Begin makes the whole
/// range invalid; End may equal Begin for a single-position range.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}
  SourceRange(SourceLoc B, SourceLoc E) : Begin(B), End(E) {}

  bool isValid() const { return Begin.isValid(); }

  /// "l:c" for a single position, "l:c-l:c" for a span.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    if (!End.isValid() || End == Begin)
      return Begin.str();
    return Begin.str() + "-" + End.str();
  }

  friend bool operator==(const SourceRange &A, const SourceRange &B) {
    return A.Begin == B.Begin && A.End == B.End;
  }
};

} // namespace iaa

#endif // IAA_SUPPORT_SOURCELOC_H
