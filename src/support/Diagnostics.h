//===- support/Diagnostics.h - Error reporting for the front end -*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal diagnostics engine. The MF front end is library code, so instead
/// of printing to stderr it records diagnostics into a DiagnosticEngine that
/// the client (tool, test, benchmark) inspects afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_DIAGNOSTICS_H
#define IAA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <optional>
#include <string>
#include <vector>

namespace iaa {

/// Severity of a recorded diagnostic, most severe first.
enum class DiagKind { Error, Warning, Note };

const char *diagKindName(DiagKind Kind);

/// Totally ordered severity: smaller ranks are more severe (Error < Warning
/// < Note), so diagnostics sort most-important-first by rank.
inline unsigned diagSeverityRank(DiagKind Kind) {
  return static_cast<unsigned>(Kind);
}

/// One recorded diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
  /// Optional span the diagnostic covers; Loc remains the anchor position.
  SourceRange Range;

  /// Renders the diagnostic as "line:col: error: message", with the range
  /// ("l:c-l:c") in place of the position when one was attached.
  std::string str() const;
};

/// Collects diagnostics produced while parsing or analyzing an MF program.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message), {}});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message), {}});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message), {}});
  }

  /// Range-carrying variants; the range's begin doubles as the anchor.
  void error(SourceRange R, std::string Message) {
    Diags.push_back({DiagKind::Error, R.Begin, std::move(Message), R});
    ++NumErrors;
  }

  void warning(SourceRange R, std::string Message) {
    Diags.push_back({DiagKind::Warning, R.Begin, std::move(Message), R});
  }

  void note(SourceRange R, std::string Message) {
    Diags.push_back({DiagKind::Note, R.Begin, std::move(Message), R});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// The worst severity recorded, or none when empty.
  std::optional<DiagKind> maxSeverity() const;

  /// All diagnostics joined by newlines, for test failure messages.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace iaa

#endif // IAA_SUPPORT_DIAGNOSTICS_H
