//===- support/Diagnostics.h - Error reporting for the front end -*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal diagnostics engine. The MF front end is library code, so instead
/// of printing to stderr it records diagnostics into a DiagnosticEngine that
/// the client (tool, test, benchmark) inspects afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_DIAGNOSTICS_H
#define IAA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace iaa {

/// Severity of a recorded diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One recorded diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders the diagnostic as "line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics produced while parsing or analyzing an MF program.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines, for test failure messages.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace iaa

#endif // IAA_SUPPORT_DIAGNOSTICS_H
