//===- support/Json.h - Minimal JSON writing and parsing --------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON layer for the observability outputs (trace
/// events, optimization remarks, statistics, bench results): string escaping
/// and number formatting for writers, and a strict recursive-descent parser
/// used by the tests to validate that emitted documents are well-formed.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_JSON_H
#define IAA_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace iaa {
namespace json {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
std::string escape(const std::string &S);

/// Quotes and escapes \p S as a JSON string literal.
inline std::string str(const std::string &S) {
  return "\"" + escape(S) + "\"";
}

/// Formats \p V as a JSON number. NaN and infinities are not representable
/// in JSON and are emitted as 0.
std::string num(double V);

/// A parsed JSON value (null, bool, number, string, array, or object).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<Value> Elems;
  std::map<std::string, Value> Members;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Member lookup; null when absent or not an object.
  const Value *member(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Members.find(Name);
    return It == Members.end() ? nullptr : &It->second;
  }
};

/// Parses \p Text as one JSON document; std::nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(const std::string &Text);

} // namespace json
} // namespace iaa

#endif // IAA_SUPPORT_JSON_H
