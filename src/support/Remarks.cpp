//===- support/Remarks.cpp - Structured optimization remarks --------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "support/Remarks.h"

#include "support/Json.h"

using namespace iaa;

const char *iaa::remarkKindName(Remark::Kind K) {
  switch (K) {
  case Remark::Kind::Parallelized: return "parallelized";
  case Remark::Kind::Missed:       return "missed";
  case Remark::Kind::Audit:        return "audit";
  case Remark::Kind::RuntimeCheck: return "runtime-check";
  case Remark::Kind::FaultReplay:  return "fault-replay";
  case Remark::Kind::Recurrence:   return "recurrence";
  }
  return "?";
}

std::string Remark::str() const {
  std::string Out = Loop + ": " + remarkKindName(K);
  if (!Reason.empty())
    Out += " — " + Reason;
  for (const auto &[Key, Val] : Evidence)
    Out += "\n    " + Key + ": " + Val;
  return Out;
}

std::string Remark::jsonLine() const {
  std::string Out = "{\"loop\": " + json::str(Loop) +
                    ", \"kind\": " + json::str(remarkKindName(K)) +
                    ", \"reason\": " + json::str(Reason) +
                    ", \"evidence\": {";
  bool First = true;
  for (const auto &[Key, Val] : Evidence) {
    if (!First)
      Out += ", ";
    First = false;
    Out += json::str(Key) + ": " + json::str(Val);
  }
  Out += "}}";
  return Out;
}

std::string iaa::remarksText(const std::vector<Remark> &Remarks) {
  std::string Out;
  for (const Remark &R : Remarks)
    Out += R.str() + "\n";
  return Out;
}

std::string iaa::remarksJsonl(const std::vector<Remark> &Remarks) {
  std::string Out;
  for (const Remark &R : Remarks)
    Out += R.jsonLine() + "\n";
  return Out;
}

void RemarkSink::add(Remark R) {
  std::lock_guard<std::mutex> Lock(M);
  Items.push_back(std::move(R));
}

void RemarkSink::add(const std::vector<Remark> &Rs) {
  std::lock_guard<std::mutex> Lock(M);
  Items.insert(Items.end(), Rs.begin(), Rs.end());
}

size_t RemarkSink::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Items.size();
}

std::vector<Remark> RemarkSink::all() const {
  std::lock_guard<std::mutex> Lock(M);
  return Items;
}

std::vector<Remark> RemarkSink::take() {
  std::lock_guard<std::mutex> Lock(M);
  return std::move(Items);
}

std::string RemarkSink::text() const { return remarksText(all()); }

std::string RemarkSink::jsonl() const { return remarksJsonl(all()); }
