//===- support/TimerGroup.h - Named phase timers ----------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A group of named AccumulatingTimers in insertion order, used to attribute
/// pipeline wall time to phases (Table 2's per-phase breakdown). The
/// pipeline times each phase with a TimeRegion on the group's timers and
/// snapshots the result into PipelineResult::PhaseSeconds.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SUPPORT_TIMERGROUP_H
#define IAA_SUPPORT_TIMERGROUP_H

#include "support/Timer.h"

#include <string>
#include <utility>
#include <vector>

namespace iaa {

/// Named accumulating timers, ordered by first use.
class TimerGroup {
public:
  /// The timer named \p Name, created on first use.
  AccumulatingTimer &timer(const std::string &Name) {
    for (auto &[N, T] : Timers)
      if (N == Name)
        return T;
    Timers.emplace_back(Name, AccumulatingTimer());
    return Timers.back().second;
  }

  /// (name, seconds) snapshot in insertion order.
  std::vector<std::pair<std::string, double>> seconds() const {
    std::vector<std::pair<std::string, double>> Out;
    Out.reserve(Timers.size());
    for (const auto &[N, T] : Timers)
      Out.emplace_back(N, T.seconds());
    return Out;
  }

  double total() const {
    double Sum = 0;
    for (const auto &[N, T] : Timers)
      Sum += T.seconds();
    return Sum;
  }

private:
  std::vector<std::pair<std::string, AccumulatingTimer>> Timers;
};

} // namespace iaa

#endif // IAA_SUPPORT_TIMERGROUP_H
