//===- benchprogs/Benchmarks.h - Reconstructed benchmark kernels -*- C++ -*-=//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MF reconstructions of the five benchmark programs of Table 2/Table 3:
/// TRFD, DYFESM, BDNA (Perfect Benchmarks), P3M (NCSA), and TREE
/// (Barnes-Hut, U. Hawaii). The originals are Fortran codes that are not
/// redistributable here; each reconstruction reproduces the exact irregular
/// access pattern the paper analyzes in that program:
///
///  - TRFD INTGRL/do140: triangular index array ia() with closed-form value
///    (ia(i) = i*(i-1)/2 built by recurrence), segments [ia(i)+1 : ia(i)+i];
///  - DYFESM SOLXDD (Fig. 13) + HOP: CCS-style pptr/iblen offset-length
///    segments with a non-constant base (closed-form distance only);
///  - BDNA ACTFOR/do236+do240 (Fig. 14 pattern): per-iteration index
///    gathering into ind(), full initialization, scatter-accumulate, and
///    indirect consumption — privatization via closed-form bounds;
///  - P3M PP/do100: the same gather/scatter shape with two host arrays;
///  - TREE ACCEL/do10: an explicit array stack driving an iterative tree
///    walk — privatization via the stack property.
///
/// Sizes are parameterized so the benches can scale work; every program
/// ends by folding results into small output arrays so nothing is dead.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_BENCHPROGS_BENCHMARKS_H
#define IAA_BENCHPROGS_BENCHMARKS_H

#include <string>
#include <vector>

namespace iaa {
namespace benchprogs {

/// One reconstructed benchmark.
struct BenchmarkProgram {
  std::string Name;
  std::string Source;
  /// Labels of the irregular loops the paper reports for this program
  /// (Table 3), which only parallelize with the IAA analyses on.
  std::vector<std::string> IrregularLoops;
  /// Labels analyzed but deliberately left serial (helpers like the BDNA
  /// gather loop do236).
  std::vector<std::string> HelperLoops;
  /// Lines of MF code (for the Table 2 "lines" column).
  unsigned lineCount() const;
};

/// Size scale: 1.0 is the default bench configuration; tests use smaller.
BenchmarkProgram trfd(double Scale = 1.0);
BenchmarkProgram dyfesm(double Scale = 1.0);
/// The Fig. 16(e) configuration: a tiny input whose loops are too short to
/// amortize fork/join overhead.
BenchmarkProgram dyfesmTiny();
BenchmarkProgram bdna(double Scale = 1.0);
BenchmarkProgram p3m(double Scale = 1.0);
BenchmarkProgram tree(double Scale = 1.0);

/// All five, in Table 2 order.
std::vector<BenchmarkProgram> allBenchmarks(double Scale = 1.0);

/// The paper's motivating examples, used by tests and the example
/// programs: Fig. 1(a) (consecutively written), Fig. 1(b) (array stack),
/// Fig. 3 (CCS offset/length), Fig. 14 (index gathering).
std::string fig1aSource();
std::string fig1bSource();
std::string fig3Source();
std::string fig14Source();

} // namespace benchprogs
} // namespace iaa

#endif // IAA_BENCHPROGS_BENCHMARKS_H
