//===- benchprogs/Benchmarks.cpp - Reconstructed benchmark kernels --------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace iaa;
using namespace iaa::benchprogs;

namespace {

/// Replaces every "@KEY@" in \p Template by the mapped value.
std::string subst(std::string Template,
                  const std::map<std::string, long> &Values) {
  for (const auto &[Key, Value] : Values) {
    std::string Needle = "@" + Key + "@";
    std::string Repl = std::to_string(Value);
    size_t Pos = 0;
    while ((Pos = Template.find(Needle, Pos)) != std::string::npos) {
      Template.replace(Pos, Needle.size(), Repl);
      Pos += Repl.size();
    }
  }
  assert(Template.find('@') == std::string::npos &&
         "unsubstituted parameter in benchmark template");
  return Template;
}

long scaled(double Scale, long Base) {
  long V = static_cast<long>(std::llround(Base * Scale));
  return std::max<long>(1, V);
}

} // namespace

unsigned BenchmarkProgram::lineCount() const {
  return static_cast<unsigned>(
      std::count(Source.begin(), Source.end(), '\n'));
}

//===----------------------------------------------------------------------===//
// TRFD — INTGRL/do140: triangular segments through ia() (closed-form value)
//===----------------------------------------------------------------------===//

BenchmarkProgram benchprogs::trfd(double Scale) {
  long N = 128;                 // Orbital count.
  long NX = N * (N + 1) / 2 + 1;
  long Reps = scaled(Scale, 20);
  long Fill = 55; // Affine passes per rep; keeps do140 near the paper's ~5%.

  std::string Src = subst(R"(program trfd
  ! Reconstruction of the Perfect Benchmark TRFD integral transform kernel:
  ! the two-electron integrals live in a triangular array addressed through
  ! the index array ia(), with ia(i) = i*(i-1)/2 built by recurrence.
  integer n, nx, reps, fill, i, j, r, s
  integer ia(@NIA@)
  real x(@NX@), v(@NX@), w(@NX@), vsum(@N@)
  procedure setupia
    ia(1) = 0
    do i = 1, n
      ia(i + 1) = ia(i) + i
    end do
  end
  n = @N@
  nx = @NXM1@
  reps = @REPS@
  fill = @FILL@
  call setupia
  do i = 1, nx
    x(i) = mod(i * 17, 19) * 0.25 + 1.0
    v(i) = 0.0
    w(i) = 1.0
  end do
  do r = 1, reps
    ! The bulk of TRFD is dense transform work that classical analysis
    ! already parallelizes; do140 is the irregular 5%.
    do i = 1, nx
      do s = 1, fill
        w(i) = w(i) * 0.999 + x(i) * 0.001
      end do
    end do
    do140: do i = 1, n
      do j = 1, i
        v(ia(i) + j) = v(ia(i) + j) + x(ia(i) + j) * 0.5
      end do
      do j = 1, i
        v(ia(i) + j) = v(ia(i) + j) + x(ia(i) + i - j + 1) * 0.25
      end do
    end do
  end do
  do i = 1, n
    vsum(i) = v(ia(i) + 1) + v(ia(i) + i)
  end do
end)",
                          {{"N", N},
                           {"NIA", N + 1},
                           {"NX", NX},
                           {"NXM1", NX - 1},
                           {"REPS", Reps},
                           {"FILL", Fill}});
  return {"TRFD", std::move(Src), {"do140"}, {}};
}

//===----------------------------------------------------------------------===//
// DYFESM — SOLXDD (Fig. 13) and HOP: pptr/iblen segments (closed-form
// distance with a non-constant base)
//===----------------------------------------------------------------------===//

static BenchmarkProgram dyfesmImpl(long N, long Blk, long Reps, long Fill);

BenchmarkProgram benchprogs::dyfesm(double Scale) {
  return dyfesmImpl(/*N=*/400, /*Blk=*/8, scaled(Scale, 25), /*Fill=*/31);
}

BenchmarkProgram benchprogs::dyfesmTiny() {
  // Fig. 16(e): the paper notes DYFESM "used a tiny input data set and
  // suffered from the overhead introduced by parallelization".
  return dyfesmImpl(/*N=*/20, /*Blk=*/4, /*Reps=*/600, /*Fill=*/1);
}

static BenchmarkProgram dyfesmImpl(long N, long Blk, long Reps, long Fill) {
  long SZ = 4 + N * (Blk + 2);

  std::string Src = subst(R"(program dyfesm
  ! Reconstruction of the Perfect Benchmark DYFESM finite-element solver:
  ! data is stored in variable-length blocks addressed by the offset array
  ! pptr() with block lengths iblen() (the Fig. 13 pattern). pptr's base is
  ! computed at run time, so only the closed-form *distance* is available.
  integer n, blk, reps, fill, istart, i, j, k, r, s
  integer pptr(@NP1@), iblen(@N@)
  real xdd(@SZ@), zz(@SZ@), rr(@SZ@), y(@SZ@), xdplus(@SZ@), xd(@SZ@)
  real wf(@SZ@)
  real outs(@N@)
  procedure setup
    do i = 1, n
      iblen(i) = mod(i * 7, blk) + 2
    end do
    istart = mod(iblen(1), 3) + 1
    pptr(1) = istart
    do i = 1, n
      pptr(i + 1) = pptr(i) + iblen(i)
    end do
  end
  procedure solxdd
    do4: do i = 1, n
      do j = 2, iblen(i)
        do k = 1, j - 1
          xdd(pptr(i) + k - 1) = xdd(pptr(i) + k - 1) + zz(pptr(i) + j - 1) * 0.0625
        end do
      end do
      do j = 1, iblen(i) - 1
        do k = 1, j
          xdd(pptr(i) + j) = xdd(pptr(i) + j) + xdd(iblen(i) + pptr(i) + k - j - 1) * 0.03125
        end do
      end do
    end do
    do10: do i = 1, n
      do j = 1, iblen(i)
        rr(pptr(i) + j - 1) = rr(pptr(i) + j - 1) + y(pptr(i) + j - 1) * 0.5
      end do
    end do
    do30: do i = 1, n
      do j = 1, iblen(i)
        zz(pptr(i) + j - 1) = zz(pptr(i) + j - 1) + rr(pptr(i) + j - 1) * 0.25
      end do
    end do
    do50: do i = 1, n
      do j = 1, iblen(i)
        xdd(pptr(i) + j - 1) = xdd(pptr(i) + j - 1) * 0.9375 + zz(pptr(i) + j - 1) * 0.0625
      end do
    end do
  end
  procedure hop
    hop20: do i = 1, n
      do j = 1, iblen(i)
        xdplus(pptr(i) + j - 1) = xd(pptr(i) + j - 1) + xdd(pptr(i) + j - 1) * 0.5
      end do
    end do
  end
  n = @N@
  blk = @BLK@
  reps = @REPS@
  fill = @FILL@
  call setup
  do i = 1, @SZM1@
    y(i) = mod(i * 13, 11) * 0.125 + 0.5
    zz(i) = mod(i * 5, 9) * 0.25 + 0.25
    xd(i) = 1.0
    xdd(i) = 0.0
    rr(i) = 0.0
    xdplus(i) = 0.0
    wf(i) = 1.0
  end do
  do r = 1, reps
    do i = 1, @SZM1@
      do s = 1, fill
        wf(i) = wf(i) * 0.999 + y(i) * 0.001
      end do
    end do
    call solxdd
    call hop
  end do
  do i = 1, n
    outs(i) = xdd(pptr(i)) + xdplus(pptr(i)) + zz(pptr(i))
  end do
end)",
                          {{"N", N},
                           {"NP1", N + 1},
                           {"BLK", Blk},
                           {"SZ", SZ},
                           {"SZM1", SZ - 1},
                           {"REPS", Reps},
                           {"FILL", Fill}});
  return {"DYFESM",
          std::move(Src),
          {"do4", "do10", "do30", "do50", "hop20"},
          {}};
}

//===----------------------------------------------------------------------===//
// BDNA — ACTFOR/do236 (gather) + do240 (indirect privatization via CFB)
//===----------------------------------------------------------------------===//

BenchmarkProgram benchprogs::bdna(double Scale) {
  long NP = 120;  // Outer particle count.
  long P = 900;   // Candidate interaction sites per particle.
  long Reps = scaled(Scale, 12);
  long FillN = 10800;
  long Fill = 45; // Keeps do240 near the paper's ~32%.

  std::string Src = subst(R"(program bdna
  ! Reconstruction of the Perfect Benchmark BDNA molecular dynamics kernel
  ! (subroutine ACTFOR): each outer iteration gathers the indices of nearby
  ! sites (do236), fully initializes a private work array, accumulates into
  ! it through the gathered indices, and folds the result into the force on
  ! particle i. Privatizing xdt() requires the closed-form bounds of ind().
  integer np, p, reps, fill, filln, i, j, q, jj, r, s
  integer ind(@P@)
  real xdt(@P@), y(@P@), w(@P@), f(@NP@), wb(@FILLN@)
  np = @NP@
  p = @P@
  reps = @REPS@
  fill = @FILL@
  filln = @FILLN@
  do j = 1, filln
    wb(j) = 1.0
  end do
  do j = 1, p
    y(j) = mod(j * 29, 23) * 0.125 + 0.5
    w(j) = mod(j * 31, 17) * 0.0625 + 0.25
  end do
  do i = 1, np
    f(i) = 0.0
  end do
  do r = 1, reps
    do j = 1, filln
      do s = 1, fill
        wb(j) = wb(j) * 0.999 + 0.001
      end do
    end do
    do240: do i = 1, np
      q = 0
      do236: do j = 1, p
        if (mod(j * 13 + i, 3) == 0) then
          q = q + 1
          ind(q) = j
        end if
      end do
      do j = 1, p
        xdt(j) = 0.0
      end do
      do j = 1, q
        jj = ind(j)
        xdt(jj) = xdt(jj) + y(jj) * 0.5
      end do
      do j = 1, q
        jj = ind(j)
        f(i) = f(i) + xdt(jj) * w(jj)
      end do
    end do
  end do
end)",
                          {{"NP", NP},
                           {"P", P},
                           {"REPS", Reps},
                           {"FILL", Fill},
                           {"FILLN", FillN}});
  return {"BDNA", std::move(Src), {"do240"}, {"do236"}};
}

//===----------------------------------------------------------------------===//
// P3M — PP/do100: particle-particle interactions through gathered neighbor
// lists (two host arrays, CFB privatization)
//===----------------------------------------------------------------------===//

BenchmarkProgram benchprogs::p3m(double Scale) {
  long NP = 100;
  long P = 800;
  long Reps = scaled(Scale, 14);
  long Fill = 70; // Keeps do100 near the paper's ~74%.

  std::string Src = subst(R"(program p3m
  ! Reconstruction of the NCSA P3M particle-mesh kernel (subroutine PP):
  ! each particle gathers its neighbor list jpr(), clears two work arrays
  ! over the full candidate range, scatters contributions through jpr(),
  ! and reduces them into the potential on particle i.
  integer np, p, reps, fill, i, j, q, jj, r, s
  integer jpr(@P@)
  real x0(@P@), r2(@P@), px(@P@), py(@P@), pot(@NP@), wm(@P@)
  np = @NP@
  p = @P@
  reps = @REPS@
  fill = @FILL@
  do j = 1, p
    wm(j) = 1.0
  end do
  do j = 1, p
    px(j) = mod(j * 19, 13) * 0.25 + 1.0
    py(j) = mod(j * 23, 11) * 0.125 + 0.5
  end do
  do i = 1, np
    pot(i) = 0.0
  end do
  do r = 1, reps
    do j = 1, p
      do s = 1, fill
        wm(j) = wm(j) * 0.999 + px(j) * 0.001
      end do
    end do
    do100: do i = 1, np
      q = 0
      do j = 1, p
        if (mod(j * 11 + i * 3, 4) == 0) then
          q = q + 1
          jpr(q) = j
        end if
      end do
      do j = 1, p
        x0(j) = 0.0
        r2(j) = 0.0
      end do
      do j = 1, q
        jj = jpr(j)
        x0(jj) = x0(jj) + px(jj) * 0.5
        r2(jj) = r2(jj) + py(jj) * py(jj)
      end do
      do j = 1, q
        jj = jpr(j)
        pot(i) = pot(i) + x0(jj) / (r2(jj) + 1.0)
      end do
    end do
  end do
end)",
                          {{"NP", NP},
                           {"P", P},
                           {"REPS", Reps},
                           {"FILL", Fill}});
  return {"P3M", std::move(Src), {"do100"}, {}};
}

//===----------------------------------------------------------------------===//
// TREE — ACCEL/do10: Barnes-Hut force walk with an explicit array stack
//===----------------------------------------------------------------------===//

BenchmarkProgram benchprogs::tree(double Scale) {
  long NBody = 160;
  long NN = 1023; // Complete binary tree nodes (depth 10).
  long Reps = scaled(Scale, 10);
  long Fill = 55; // Keeps do10 near the paper's ~90%.

  std::string Src = subst(R"(program tree
  ! Reconstruction of the Barnes-Hut TREE code (subroutine ACCEL): each body
  ! walks the force tree iteratively with an explicit stack of node ids.
  ! The stack discipline of Table 1 makes stack() privatizable.
  integer nbody, nn, reps, fill, i, r, node, sptr, fs
  integer left(@NN@), right(@NN@), stack(@NN@)
  real mass(@NN@), acc(@NBODY@), wt(@NN@)
  real s
  procedure buildtree
    do i = 1, nn
      left(i) = i * 2
      right(i) = i * 2 + 1
      if (left(i) > nn) then
        left(i) = 0
      end if
      if (right(i) > nn) then
        right(i) = 0
      end if
      mass(i) = mod(i * 5, 7) * 0.5 + 1.0
    end do
  end
  nbody = @NBODY@
  nn = @NN@
  reps = @REPS@
  fill = @FILL@
  call buildtree
  do i = 1, nn
    wt(i) = 1.0
  end do
  do i = 1, nbody
    acc(i) = 0.0
  end do
  do r = 1, reps
    do i = 1, nn
      do fs = 1, fill
        wt(i) = wt(i) * 0.999 + mass(i) * 0.001
      end do
    end do
    do10: do i = 1, nbody
      s = 0.0
      sptr = 0
      sptr = sptr + 1
      stack(sptr) = 1
      while (sptr > 0)
        node = stack(sptr)
        sptr = sptr - 1
        s = s + mass(node) * (mod(node + i, 5) + 1)
        if (left(node) > 0) then
          sptr = sptr + 1
          stack(sptr) = left(node)
        end if
        if (right(node) > 0) then
          sptr = sptr + 1
          stack(sptr) = right(node)
        end if
      end while
      acc(i) = acc(i) + s * 0.001
    end do
  end do
end)",
                          {{"NBODY", NBody},
                           {"NN", NN},
                           {"REPS", Reps},
                           {"FILL", Fill}});
  return {"TREE", std::move(Src), {"do10"}, {}};
}

std::vector<BenchmarkProgram> benchprogs::allBenchmarks(double Scale) {
  return {trfd(Scale), dyfesm(Scale), bdna(Scale), p3m(Scale), tree(Scale)};
}

//===----------------------------------------------------------------------===//
// Paper figures as standalone sources
//===----------------------------------------------------------------------===//

std::string benchprogs::fig1aSource() {
  return R"(program fig1a
  ! Fig. 1(a): x() is consecutively written in the while loop and read back
  ! over exactly the written section; privatizing x() parallelizes do k.
  integer n, m, k, i, j, p
  real x(1100), y(512), dz(64, 1100)
  integer link(512, 64), cond(64, 512)
  n = 64
  m = 500
  do k = 1, n
    do i = 1, m
      link(i, k) = i + 1
      if (i + k > m) then
        link(i, k) = 0
      end if
      cond(k, i) = mod(i + k, 3)
    end do
    link(m, k) = 0
  end do
  dok: do k = 1, n
    p = 0
    i = link(1, k)
    while (i /= 0)
      p = p + 1
      x(p) = y(i) + 1.0
      if (cond(k, i) > 0) then
        p = p + 1
        x(p) = y(i) * 0.5
      end if
      i = link(i, k)
    end while
    do j = 1, p
      dz(k, j) = x(j)
    end do
  end do
end)";
}

std::string benchprogs::fig1bSource() {
  return R"(program fig1b
  ! Fig. 1(b): t() is used as an array stack with pointer p reset at the
  ! top of each outer iteration; t() is privatizable for do i.
  integer n, m, i, j, p
  real t(256), work(256), res(128)
  n = 128
  m = 200
  do j = 1, m
    work(j) = mod(j * 3, 7) * 0.5
  end do
  do i = 1, n
    res(i) = 0.0
  end do
  doi: do i = 1, n
    p = 0
    p = p + 1
    t(p) = i * 1.0
    do j = 1, m
      p = p + 1
      t(p) = work(j)
      if (work(j) > 1.0) then
        if (p >= 1) then
          res(i) = res(i) + t(p)
          p = p - 1
        end if
      end if
    end do
  end do
end)";
}

std::string benchprogs::fig3Source() {
  return R"(program fig3
  ! Fig. 3: Compressed Column Storage traversal; offset() has the
  ! closed-form distance length(), which licenses the offset-length test.
  integer n, i, j
  real data(2200), total
  integer offset(201), length(200)
  n = 200
  do i = 1, n
    length(i) = mod(i * 7, 10) + 1
  end do
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  d200: do i = 1, n
    d300: do j = 1, length(i)
      data(offset(i) + j - 1) = i * 0.5 + j
    end do
  end do
  total = 0.0
  do i = 1, n
    total = total + data(offset(i))
  end do
end)";
}

std::string benchprogs::fig14Source() {
  return R"(program fig14
  ! Fig. 14: an index gathering loop; ind[1:q] is injective with values in
  ! [1, p], so do j carries no dependence and ind() is privatizable in do k.
  integer n, p, k, i, j, q, jj
  real x(500), y(500), z(40, 500)
  integer ind(500)
  n = 40
  p = 500
  do i = 1, p
    x(i) = mod(i * 3, 5) - 2.0
    y(i) = mod(i * 7, 9) * 0.5
  end do
  dok: do k = 1, n
    q = 0
    do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    doj: do j = 1, q
      jj = ind(j)
      z(k, jj) = x(jj) * y(jj)
    end do
  end do
end)";
}

//===----------------------------------------------------------------------===//
// (Rough) line counting is defined in the header's lineCount().
//===----------------------------------------------------------------------===//
