//===- cfg/FlatCfg.cpp - Cyclic region control flow graph -----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "cfg/FlatCfg.h"

#include <algorithm>

using namespace iaa;
using namespace iaa::cfg;
using namespace iaa::mf;

FlatCfg::FlatCfg(const StmtList &Body, bool IncludeBackEdges)
    : IncludeBackEdges(IncludeBackEdges) {
  Entry = addNode(FlatNode::Kind::Entry, nullptr);
  std::vector<unsigned> Exits = buildList(Body, {Entry});
  Exit = addNode(FlatNode::Kind::Exit, nullptr);
  for (unsigned E : Exits)
    addEdge(E, Exit);
}

unsigned FlatCfg::addNode(FlatNode::Kind K, const Stmt *S) {
  FlatNode N;
  N.K = K;
  N.S = S;
  Nodes.push_back(std::move(N));
  unsigned Idx = static_cast<unsigned>(Nodes.size() - 1);
  if (S)
    StmtToNode[S] = Idx;
  return Idx;
}

void FlatCfg::addEdge(unsigned From, unsigned To) {
  Nodes[From].Succs.push_back(To);
  Nodes[To].Preds.push_back(From);
}

unsigned FlatCfg::nodeFor(const Stmt *S) const {
  auto It = StmtToNode.find(S);
  return It == StmtToNode.end() ? ~0u : It->second;
}

std::vector<unsigned> FlatCfg::buildList(const StmtList &Body,
                                         std::vector<unsigned> Preds) {
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign:
    case StmtKind::Call: {
      unsigned N = addNode(FlatNode::Kind::Stmt, S);
      for (unsigned P : Preds)
        addEdge(P, N);
      Preds = {N};
      break;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      unsigned Cond = addNode(FlatNode::Kind::Branch, S);
      for (unsigned P : Preds)
        addEdge(P, Cond);
      std::vector<unsigned> ThenExits = buildList(IS->thenBody(), {Cond});
      std::vector<unsigned> ElseExits = buildList(IS->elseBody(), {Cond});
      // An empty else body falls straight through the condition node;
      // buildList already returns {Cond} in that case.
      Preds.clear();
      Preds.insert(Preds.end(), ThenExits.begin(), ThenExits.end());
      for (unsigned E : ElseExits)
        if (std::find(Preds.begin(), Preds.end(), E) == Preds.end())
          Preds.push_back(E);
      break;
    }
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      unsigned Head = addNode(FlatNode::Kind::LoopHead, S);
      for (unsigned P : Preds)
        addEdge(P, Head);
      std::vector<unsigned> BodyExits = buildList(DS->body(), {Head});
      if (IncludeBackEdges)
        for (unsigned E : BodyExits)
          addEdge(E, Head);
      // Control leaves the loop from the header (zero-trip or done).
      Preds = {Head};
      if (!IncludeBackEdges)
        for (unsigned E : BodyExits)
          if (E != Head)
            Preds.push_back(E);
      break;
    }
    case StmtKind::While: {
      const auto *WS = cast<WhileStmt>(S);
      unsigned Head = addNode(FlatNode::Kind::WhileHead, S);
      for (unsigned P : Preds)
        addEdge(P, Head);
      std::vector<unsigned> BodyExits = buildList(WS->body(), {Head});
      if (IncludeBackEdges)
        for (unsigned E : BodyExits)
          addEdge(E, Head);
      Preds = {Head};
      if (!IncludeBackEdges)
        for (unsigned E : BodyExits)
          if (E != Head)
            Preds.push_back(E);
      break;
    }
    }
  }
  return Preds;
}
