//===- cfg/Hcg.h - Hierarchical control graph -------------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical control graph (HCG) of Sec. 3.2.1: "Each statement,
/// loop, and procedure is represented by a node, respectively. There also is
/// a section node for each loop body and each procedure body. Each section
/// node has a single entry node and a single exit node. ... we deliberately
/// delete the back edges in the control flow graph. Hence, the HCG is
/// directed acyclic."
///
/// The array property analysis (QuerySolver and friends) propagates queries
/// backward over this graph; do loops are summarized by aggregation at their
/// Loop nodes, procedures are entered at Call nodes and escaped at procedure
/// heads via query splitting.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_CFG_HCG_H
#define IAA_CFG_HCG_H

#include "mf/Program.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace iaa {
namespace cfg {

class HcgSection;

/// One vertex of an HCG section.
struct HcgNode {
  enum class Kind {
    Entry,  ///< Section entry.
    Exit,   ///< Section exit.
    Assign, ///< One assignment statement.
    Branch, ///< If condition (its arms rejoin inside the same section).
    Loop,   ///< Do-loop header; BodySection holds the loop body.
    While,  ///< While loop, kept opaque (Sec. 3.2.1 assumes do loops).
    Call,   ///< Procedure call site.
  };

  Kind K = Kind::Assign;
  const mf::Stmt *S = nullptr;
  HcgSection *Parent = nullptr;      ///< Section containing this node.
  HcgSection *BodySection = nullptr; ///< Loop body (Kind::Loop only).
  std::vector<HcgNode *> Preds;
  std::vector<HcgNode *> Succs;
  /// Topological index within the section (entry lowest, exit highest).
  /// The QuerySolver worklist pops the *highest* index first, which realizes
  /// the paper's "reverse topological order" rule: a node is not checked
  /// until all its successors have been checked.
  unsigned TopoIdx = 0;
  /// True when the node lies on every entry-to-exit path of its section
  /// (structured programs: any node not nested in an if arm). Such a node
  /// dominates the section exit, which Fig. 9 (line 20) uses to snapshot
  /// the strongest MUST-Gen seen so far.
  bool OnAllPaths = false;
};

/// A section node: the body of a do loop or of a procedure.
class HcgSection {
public:
  HcgNode *entry() const { return Entry; }
  HcgNode *exit() const { return Exit; }
  const std::vector<std::unique_ptr<HcgNode>> &nodes() const { return Nodes; }

  /// The do loop whose body this is, or null for a procedure body.
  const mf::DoStmt *loop() const { return Loop; }
  /// The procedure whose body this is, or null for a loop body.
  mf::Procedure *procedure() const { return Proc; }

  /// The Loop/Call/... node representing this section in its parent
  /// section, or null for a procedure body.
  HcgNode *ownerNode() const { return Owner; }

private:
  friend class Hcg;
  HcgNode *Entry = nullptr;
  HcgNode *Exit = nullptr;
  std::vector<std::unique_ptr<HcgNode>> Nodes;
  const mf::DoStmt *Loop = nullptr;
  mf::Procedure *Proc = nullptr;
  HcgNode *Owner = nullptr;
};

/// The whole-program hierarchical control graph.
class Hcg {
public:
  explicit Hcg(mf::Program &P);

  mf::Program &program() const { return Prog; }

  /// The section of a procedure body.
  HcgSection *procSection(const mf::Procedure *P) const;
  /// The section of a do-loop body.
  HcgSection *loopSection(const mf::DoStmt *L) const;
  /// The node representing \p S inside its enclosing section, or null.
  HcgNode *nodeFor(const mf::Stmt *S) const;
  /// Every Call node whose callee is \p P.
  const std::vector<HcgNode *> &callSites(const mf::Procedure *P) const;

private:
  HcgSection *buildSection(const mf::StmtList &Body, const mf::DoStmt *Loop,
                           mf::Procedure *Proc);
  std::vector<HcgNode *> buildList(HcgSection &Sec, const mf::StmtList &Body,
                                   std::vector<HcgNode *> Preds,
                                   bool InBranch);
  HcgNode *addNode(HcgSection &Sec, HcgNode::Kind K, const mf::Stmt *S,
                   bool InBranch);
  static void addEdge(HcgNode *From, HcgNode *To);
  static void assignTopoOrder(HcgSection &Sec);

  mf::Program &Prog;
  std::vector<std::unique_ptr<HcgSection>> Sections;
  std::unordered_map<const mf::Procedure *, HcgSection *> ProcSections;
  std::unordered_map<const mf::DoStmt *, HcgSection *> LoopSections;
  std::unordered_map<const mf::Stmt *, HcgNode *> StmtNodes;
  std::unordered_map<const mf::Procedure *, std::vector<HcgNode *>> Callers;
  std::vector<HcgNode *> NoCallers;
};

} // namespace cfg
} // namespace iaa

#endif // IAA_CFG_HCG_H
