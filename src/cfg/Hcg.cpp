//===- cfg/Hcg.cpp - Hierarchical control graph ---------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "cfg/Hcg.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace iaa;
using namespace iaa::cfg;
using namespace iaa::mf;

Hcg::Hcg(Program &P) : Prog(P) {
  for (Procedure *Proc : P.procedures()) {
    HcgSection *Sec = buildSection(Proc->body(), /*Loop=*/nullptr, Proc);
    ProcSections[Proc] = Sec;
  }
  // Resolve call sites after all sections exist.
  for (const auto &Sec : Sections)
    for (const auto &Node : Sec->nodes())
      if (Node->K == HcgNode::Kind::Call) {
        const auto *CS = cast<CallStmt>(Node->S);
        if (CS->callee())
          Callers[CS->callee()].push_back(Node.get());
      }
}

HcgSection *Hcg::procSection(const Procedure *P) const {
  auto It = ProcSections.find(P);
  return It == ProcSections.end() ? nullptr : It->second;
}

HcgSection *Hcg::loopSection(const DoStmt *L) const {
  auto It = LoopSections.find(L);
  return It == LoopSections.end() ? nullptr : It->second;
}

HcgNode *Hcg::nodeFor(const Stmt *S) const {
  auto It = StmtNodes.find(S);
  return It == StmtNodes.end() ? nullptr : It->second;
}

const std::vector<HcgNode *> &Hcg::callSites(const Procedure *P) const {
  auto It = Callers.find(P);
  return It == Callers.end() ? NoCallers : It->second;
}

HcgNode *Hcg::addNode(HcgSection &Sec, HcgNode::Kind K, const Stmt *S,
                      bool InBranch) {
  auto Owned = std::make_unique<HcgNode>();
  HcgNode *N = Owned.get();
  N->K = K;
  N->S = S;
  N->Parent = &Sec;
  N->OnAllPaths = !InBranch;
  Sec.Nodes.push_back(std::move(Owned));
  if (S && K != HcgNode::Kind::Entry && K != HcgNode::Kind::Exit)
    StmtNodes[S] = N;
  return N;
}

void Hcg::addEdge(HcgNode *From, HcgNode *To) {
  From->Succs.push_back(To);
  To->Preds.push_back(From);
}

HcgSection *Hcg::buildSection(const StmtList &Body, const DoStmt *Loop,
                              Procedure *Proc) {
  auto Owned = std::make_unique<HcgSection>();
  HcgSection *Sec = Owned.get();
  Sections.push_back(std::move(Owned));
  Sec->Loop = Loop;
  Sec->Proc = Proc;
  if (Loop)
    LoopSections[Loop] = Sec;

  Sec->Entry = addNode(*Sec, HcgNode::Kind::Entry, nullptr, /*InBranch=*/false);
  std::vector<HcgNode *> Exits =
      buildList(*Sec, Body, {Sec->Entry}, /*InBranch=*/false);
  Sec->Exit = addNode(*Sec, HcgNode::Kind::Exit, nullptr, /*InBranch=*/false);
  for (HcgNode *E : Exits)
    addEdge(E, Sec->Exit);

  assignTopoOrder(*Sec);
  return Sec;
}

std::vector<HcgNode *> Hcg::buildList(HcgSection &Sec, const StmtList &Body,
                                      std::vector<HcgNode *> Preds,
                                      bool InBranch) {
  for (Stmt *S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      HcgNode *N = addNode(Sec, HcgNode::Kind::Assign, S, InBranch);
      for (HcgNode *P : Preds)
        addEdge(P, N);
      Preds = {N};
      break;
    }
    case StmtKind::Call: {
      HcgNode *N = addNode(Sec, HcgNode::Kind::Call, S, InBranch);
      for (HcgNode *P : Preds)
        addEdge(P, N);
      Preds = {N};
      break;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      HcgNode *Cond = addNode(Sec, HcgNode::Kind::Branch, S, InBranch);
      for (HcgNode *P : Preds)
        addEdge(P, Cond);
      std::vector<HcgNode *> ThenExits =
          buildList(Sec, IS->thenBody(), {Cond}, /*InBranch=*/true);
      std::vector<HcgNode *> ElseExits =
          buildList(Sec, IS->elseBody(), {Cond}, /*InBranch=*/true);
      Preds = std::move(ThenExits);
      for (HcgNode *E : ElseExits)
        if (std::find(Preds.begin(), Preds.end(), E) == Preds.end())
          Preds.push_back(E);
      break;
    }
    case StmtKind::Do: {
      auto *DS = cast<DoStmt>(S);
      HcgNode *N = addNode(Sec, HcgNode::Kind::Loop, S, InBranch);
      for (HcgNode *P : Preds)
        addEdge(P, N);
      N->BodySection = buildSection(DS->body(), DS, /*Proc=*/nullptr);
      N->BodySection->Owner = N;
      Preds = {N};
      break;
    }
    case StmtKind::While: {
      HcgNode *N = addNode(Sec, HcgNode::Kind::While, S, InBranch);
      for (HcgNode *P : Preds)
        addEdge(P, N);
      Preds = {N};
      break;
    }
    }
  }
  return Preds;
}

void Hcg::assignTopoOrder(HcgSection &Sec) {
  // Kahn's algorithm; the section graph is acyclic by construction.
  std::unordered_map<HcgNode *, unsigned> InDegree;
  for (const auto &N : Sec.Nodes)
    InDegree[N.get()] = static_cast<unsigned>(N->Preds.size());
  std::deque<HcgNode *> Ready;
  Ready.push_back(Sec.Entry);
  unsigned Next = 0;
  while (!Ready.empty()) {
    HcgNode *N = Ready.front();
    Ready.pop_front();
    N->TopoIdx = Next++;
    for (HcgNode *Succ : N->Succs)
      if (--InDegree[Succ] == 0)
        Ready.push_back(Succ);
  }
  assert(Next == Sec.Nodes.size() && "HCG section must be connected acyclic");
}
