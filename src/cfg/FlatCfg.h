//===- cfg/FlatCfg.h - Cyclic region control flow graph ---------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, possibly cyclic control flow graph for one program region (a loop
/// body or procedure body), with nested loops flattened into the same graph
/// and back edges retained. This is the substrate for the bounded
/// depth-first searches of Sec. 2 (Fig. 2): the single-indexed access
/// analysis must follow the evolution of an index variable across inner
/// loop iterations, which requires real back edges — unlike the HCG used by
/// the array property analysis, which is deliberately acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_CFG_FLATCFG_H
#define IAA_CFG_FLATCFG_H

#include "mf/Stmt.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace iaa {
namespace cfg {

/// One vertex of a FlatCfg.
struct FlatNode {
  enum class Kind {
    Entry,
    Exit,
    Stmt,      ///< Assignment or call.
    Branch,    ///< If condition.
    LoopHead,  ///< Do-loop header (also the loop's exit point).
    WhileHead, ///< While-loop header (also the loop's exit point).
  };

  Kind K = Kind::Stmt;
  const mf::Stmt *S = nullptr;
  std::vector<unsigned> Preds;
  std::vector<unsigned> Succs;
};

/// The flat control flow graph of one region.
class FlatCfg {
public:
  /// Builds the graph of \p Body. When \p IncludeBackEdges is false the
  /// loop-body exits do not return to their headers (a DAG view).
  explicit FlatCfg(const mf::StmtList &Body, bool IncludeBackEdges = true);

  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }
  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }
  const FlatNode &node(unsigned Idx) const { return Nodes[Idx]; }

  /// Index of the node representing \p S, or ~0u when \p S is outside the
  /// region.
  unsigned nodeFor(const mf::Stmt *S) const;

  /// All node indices whose statement satisfies \p Pred.
  template <typename PredT>
  std::vector<unsigned> nodesWhere(PredT Pred) const {
    std::vector<unsigned> Result;
    for (unsigned I = 0; I < Nodes.size(); ++I)
      if (Nodes[I].S && Pred(Nodes[I]))
        Result.push_back(I);
    return Result;
  }

private:
  unsigned addNode(FlatNode::Kind K, const mf::Stmt *S);
  void addEdge(unsigned From, unsigned To);
  /// Lays out \p Body; \p Preds are the dangling exits feeding the first
  /// statement. Returns the dangling exits of the whole list.
  std::vector<unsigned> buildList(const mf::StmtList &Body,
                                  std::vector<unsigned> Preds);

  bool IncludeBackEdges;
  std::vector<FlatNode> Nodes;
  std::unordered_map<const mf::Stmt *, unsigned> StmtToNode;
  unsigned Entry = 0;
  unsigned Exit = 0;
};

} // namespace cfg
} // namespace iaa

#endif // IAA_CFG_FLATCFG_H
